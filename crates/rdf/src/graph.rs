//! Indexed in-memory RDF graph store.

use crate::dictionary::Dictionary;
use crate::term::{Term, TermId};
use crate::triple::{Triple, TriplePosition};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// An indexed, dictionary-encoded, in-memory RDF graph.
///
/// The graph keeps the full triple list plus three positional indexes
/// (by subject, by property, by object). This is the "local store" view of
/// the data; the distributed placement of triples across compute nodes is
/// handled by the partitioner in `cliquesquare-mapreduce`.
#[derive(Debug, Default, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Graph {
    dictionary: Dictionary,
    triples: Vec<Triple>,
    by_subject: HashMap<TermId, Vec<usize>>,
    by_property: HashMap<TermId, Vec<usize>>,
    by_object: HashMap<TermId, Vec<usize>>,
}

impl Graph {
    /// Creates an empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds a graph from an already-encoded triple list and the dictionary
    /// that encoded it, constructing the three positional indexes here.
    ///
    /// This is the bulk-load constructor: inserting the same triples one by
    /// one through [`insert`](Self::insert) yields an identical graph, but
    /// pays three hash-map probes per triple interleaved with the encode
    /// path. Panics if a triple references an id outside the dictionary.
    pub fn from_parts(dictionary: Dictionary, triples: Vec<Triple>) -> Self {
        let by_subject = Self::position_index(&triples, TriplePosition::Subject);
        let by_property = Self::position_index(&triples, TriplePosition::Property);
        let by_object = Self::position_index(&triples, TriplePosition::Object);
        Self::from_parts_with_indexes(dictionary, triples, by_subject, by_property, by_object)
    }

    /// Builds the positional index of `triples` for one position: a map from
    /// each term id occurring there to the ascending list of triple offsets.
    ///
    /// The three positional indexes are independent of each other, so a
    /// parallel loader can build them on separate workers and assemble the
    /// graph with [`from_parts_with_indexes`](Self::from_parts_with_indexes);
    /// the result is identical to sequential insertion because offsets are
    /// appended in triple order either way.
    pub fn position_index(
        triples: &[Triple],
        position: TriplePosition,
    ) -> HashMap<TermId, Vec<usize>> {
        let mut index: HashMap<TermId, Vec<usize>> = HashMap::new();
        for (offset, triple) in triples.iter().enumerate() {
            index.entry(triple.get(position)).or_default().push(offset);
        }
        index
    }

    /// Assembles a graph from pre-built parts (see
    /// [`position_index`](Self::position_index)). In debug builds the
    /// indexes are verified against a fresh rebuild and every id against the
    /// dictionary, so a loader bug cannot silently produce a graph that
    /// violates the index invariants.
    pub fn from_parts_with_indexes(
        dictionary: Dictionary,
        triples: Vec<Triple>,
        by_subject: HashMap<TermId, Vec<usize>>,
        by_property: HashMap<TermId, Vec<usize>>,
        by_object: HashMap<TermId, Vec<usize>>,
    ) -> Self {
        let terms = dictionary.len() as u32;
        assert!(
            triples
                .iter()
                .all(|t| t.as_array().iter().all(|id| id.0 < terms)),
            "triple references an id outside the dictionary"
        );
        debug_assert_eq!(
            by_subject,
            Self::position_index(&triples, TriplePosition::Subject)
        );
        debug_assert_eq!(
            by_property,
            Self::position_index(&triples, TriplePosition::Property)
        );
        debug_assert_eq!(
            by_object,
            Self::position_index(&triples, TriplePosition::Object)
        );
        Self {
            dictionary,
            triples,
            by_subject,
            by_property,
            by_object,
        }
    }

    /// Returns the number of triples in the graph.
    pub fn len(&self) -> usize {
        self.triples.len()
    }

    /// Returns `true` if the graph contains no triples.
    pub fn is_empty(&self) -> bool {
        self.triples.is_empty()
    }

    /// Returns a reference to the graph's dictionary.
    pub fn dictionary(&self) -> &Dictionary {
        &self.dictionary
    }

    /// Returns a mutable reference to the graph's dictionary.
    pub fn dictionary_mut(&mut self) -> &mut Dictionary {
        &mut self.dictionary
    }

    /// Returns the full triple list.
    pub fn triples(&self) -> &[Triple] {
        &self.triples
    }

    /// Encodes a term through the graph's dictionary.
    pub fn encode(&mut self, term: Term) -> TermId {
        self.dictionary.encode(term)
    }

    /// Looks up a term's id without inserting it.
    pub fn lookup(&self, term: &Term) -> Option<TermId> {
        self.dictionary.lookup(term)
    }

    /// Decodes a term id.
    pub fn decode(&self, id: TermId) -> Option<&Term> {
        self.dictionary.decode(id)
    }

    /// Inserts an already-encoded triple.
    pub fn insert(&mut self, triple: Triple) {
        let idx = self.triples.len();
        self.by_subject.entry(triple.subject).or_default().push(idx);
        self.by_property
            .entry(triple.property)
            .or_default()
            .push(idx);
        self.by_object.entry(triple.object).or_default().push(idx);
        self.triples.push(triple);
    }

    /// Encodes the three terms and inserts the resulting triple.
    pub fn insert_terms(&mut self, subject: Term, property: Term, object: Term) -> Triple {
        let triple = Triple::new(
            self.dictionary.encode(subject),
            self.dictionary.encode(property),
            self.dictionary.encode(object),
        );
        self.insert(triple);
        triple
    }

    /// The index slice (triple positions into [`triples`](Self::triples))
    /// for a component value, empty when the value never occurs there.
    pub fn index_of(&self, position: TriplePosition, value: TermId) -> &[usize] {
        let index = match position {
            TriplePosition::Subject => &self.by_subject,
            TriplePosition::Property => &self.by_property,
            TriplePosition::Object => &self.by_object,
        };
        index.get(&value).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Iterates over the triples whose component at `position` equals
    /// `value`, without materializing a vector.
    pub fn triples_with(
        &self,
        position: TriplePosition,
        value: TermId,
    ) -> impl Iterator<Item = Triple> + '_ {
        self.index_of(position, value)
            .iter()
            .map(move |&i| self.triples[i])
    }

    /// Iterates over the triples matching an optional pattern on each
    /// position.
    ///
    /// `None` matches anything; `Some(id)` requires equality. This is the
    /// basic access path used by the simulated Match operators. The scan is
    /// driven by the *smallest* index among the constrained positions (full
    /// triple list when no position is constrained), and the remaining
    /// constraints are checked on the fly — no intermediate vector is
    /// allocated.
    pub fn match_pattern(
        &self,
        subject: Option<TermId>,
        property: Option<TermId>,
        object: Option<TermId>,
    ) -> impl Iterator<Item = Triple> + '_ {
        // Pick the most selective available index to drive the scan.
        let mut driver: Option<&[usize]> = None;
        for (constant, position) in [
            (subject, TriplePosition::Subject),
            (property, TriplePosition::Property),
            (object, TriplePosition::Object),
        ] {
            if let Some(id) = constant {
                let ids = self.index_of(position, id);
                if driver.is_none_or(|best| ids.len() < best.len()) {
                    driver = Some(ids);
                }
            }
        }
        let candidates: Box<dyn Iterator<Item = &Triple> + '_> = match driver {
            Some(ids) => Box::new(ids.iter().map(move |&i| &self.triples[i])),
            None => Box::new(self.triples.iter()),
        };
        candidates
            .filter(move |t| subject.is_none_or(|s| t.subject == s))
            .filter(move |t| property.is_none_or(|p| t.property == p))
            .filter(move |t| object.is_none_or(|o| t.object == o))
            .copied()
    }

    /// Returns the number of distinct property values in the graph.
    pub fn distinct_properties(&self) -> usize {
        self.by_property.len()
    }

    /// Computes summary statistics for the graph.
    pub fn stats(&self) -> GraphStats {
        GraphStats {
            triples: self.triples.len(),
            distinct_terms: self.dictionary.len(),
            distinct_subjects: self.by_subject.len(),
            distinct_properties: self.by_property.len(),
            distinct_objects: self.by_object.len(),
        }
    }

    /// Returns, for each property id, the number of triples carrying it.
    ///
    /// Property cardinalities drive the cost model's cardinality estimates.
    pub fn property_cardinalities(&self) -> HashMap<TermId, usize> {
        self.by_property
            .iter()
            .map(|(&p, v)| (p, v.len()))
            .collect()
    }
}

/// Summary statistics about a [`Graph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct GraphStats {
    /// Total number of triples.
    pub triples: usize,
    /// Number of distinct dictionary terms.
    pub distinct_terms: usize,
    /// Number of distinct subjects.
    pub distinct_subjects: usize,
    /// Number of distinct properties.
    pub distinct_properties: usize,
    /// Number of distinct objects.
    pub distinct_objects: usize,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_graph() -> Graph {
        let mut g = Graph::new();
        g.insert_terms(Term::iri("a"), Term::iri("p1"), Term::iri("b"));
        g.insert_terms(Term::iri("a"), Term::iri("p2"), Term::iri("c"));
        g.insert_terms(Term::iri("d"), Term::iri("p1"), Term::iri("a"));
        g.insert_terms(Term::iri("d"), Term::iri("p2"), Term::literal("x"));
        g
    }

    #[test]
    fn insert_and_len() {
        let g = sample_graph();
        assert_eq!(g.len(), 4);
        assert!(!g.is_empty());
        assert_eq!(g.stats().triples, 4);
    }

    #[test]
    fn positional_lookup() {
        let g = sample_graph();
        let a = g.lookup(&Term::iri("a")).unwrap();
        let p1 = g.lookup(&Term::iri("p1")).unwrap();
        assert_eq!(g.triples_with(TriplePosition::Subject, a).count(), 2);
        assert_eq!(g.triples_with(TriplePosition::Property, p1).count(), 2);
        assert_eq!(g.triples_with(TriplePosition::Object, a).count(), 1);
        assert_eq!(g.index_of(TriplePosition::Subject, a).len(), 2);
    }

    #[test]
    fn match_pattern_combinations() {
        let g = sample_graph();
        let a = g.lookup(&Term::iri("a")).unwrap();
        let p2 = g.lookup(&Term::iri("p2")).unwrap();
        assert_eq!(g.match_pattern(None, None, None).count(), 4);
        assert_eq!(g.match_pattern(Some(a), None, None).count(), 2);
        assert_eq!(g.match_pattern(Some(a), Some(p2), None).count(), 1);
        assert_eq!(g.match_pattern(Some(a), Some(p2), Some(a)).count(), 0);
    }

    #[test]
    fn match_pattern_unknown_ids_yield_nothing() {
        let g = sample_graph();
        assert_eq!(g.match_pattern(Some(TermId(999)), None, None).count(), 0);
        assert_eq!(
            g.triples_with(TriplePosition::Property, TermId(999))
                .count(),
            0
        );
    }

    #[test]
    fn stats_and_cardinalities() {
        let g = sample_graph();
        let stats = g.stats();
        assert_eq!(stats.distinct_subjects, 2);
        assert_eq!(stats.distinct_properties, 2);
        assert_eq!(stats.distinct_objects, 4);
        let cards = g.property_cardinalities();
        assert_eq!(cards.values().sum::<usize>(), 4);
        assert!(cards.values().all(|&c| c == 2));
        assert_eq!(g.distinct_properties(), 2);
    }

    #[test]
    fn from_parts_matches_incremental_insertion() {
        let incremental = sample_graph();
        let rebuilt = Graph::from_parts(
            incremental.dictionary().clone(),
            incremental.triples().to_vec(),
        );
        assert_eq!(rebuilt, incremental);

        let by_subject = Graph::position_index(incremental.triples(), TriplePosition::Subject);
        let by_property = Graph::position_index(incremental.triples(), TriplePosition::Property);
        let by_object = Graph::position_index(incremental.triples(), TriplePosition::Object);
        let assembled = Graph::from_parts_with_indexes(
            incremental.dictionary().clone(),
            incremental.triples().to_vec(),
            by_subject,
            by_property,
            by_object,
        );
        assert_eq!(assembled, incremental);
    }

    #[test]
    #[should_panic(expected = "outside the dictionary")]
    fn from_parts_rejects_dangling_ids() {
        let g = sample_graph();
        let mut triples = g.triples().to_vec();
        triples.push(Triple::new(TermId(0), TermId(999), TermId(0)));
        Graph::from_parts(g.dictionary().clone(), triples);
    }

    #[test]
    fn dictionary_shared_between_inserts() {
        let mut g = Graph::new();
        let t1 = g.insert_terms(Term::iri("a"), Term::iri("p"), Term::iri("b"));
        let t2 = g.insert_terms(Term::iri("b"), Term::iri("p"), Term::iri("a"));
        assert_eq!(t1.subject, t2.object);
        assert_eq!(t1.property, t2.property);
        assert_eq!(g.dictionary().len(), 3);
    }
}
