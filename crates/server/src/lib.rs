//! Concurrent query serving for the CliqueSquare engine.
//!
//! The paper's experiments are one-shot: load a graph, run fourteen queries,
//! exit. This crate turns the engine into a *server*: many queries in flight
//! against one shared immutable store, executing on one persistent multi-job
//! scheduler ([`cliquesquare_mapreduce::Scheduler`]) so a cheap query is
//! never stuck behind an expensive one.
//!
//! * [`service::QueryService`] — the serving boundary: parses SPARQL text
//!   (or resolves a named LUBM query), plans it with the deterministic cost
//!   model, and executes it on the shared serving runtime. Every failure
//!   mode becomes a structured [`service::ServeError`] — malformed SPARQL,
//!   unknown query names, oversized requests, and worker panics all stay
//!   behind the boundary instead of poisoning a scheduler thread.
//! * [`plancache`] — a structure-keyed template plan cache: queries that
//!   repeat a BGP shape with different constants skip clique decomposition,
//!   plan-space search and translation entirely; the cached physical plan is
//!   rebound to the new constants in one pass. Bounded LRU, invalidated by
//!   the cluster's statistics epoch.
//! * [`http`] — a minimal HTTP/1.1 front end on `std::net::TcpListener`:
//!   `POST /sparql` with a query body, `GET /query?name=Q4` for the named
//!   LUBM mix, `GET /health`. Errors map to 400/404/413/500.
//!
//! Answers are bit-identical to the single-job path at any thread count and
//! any concurrency level: plans are chosen by a deterministic cost model and
//! executed with results keyed by task index, so interleaving jobs changes
//! only wall-clock time.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod http;
pub mod plancache;
pub mod service;

pub use http::{HttpServer, ServerConfig, ShutdownHandle};
pub use plancache::{CachedPlan, PlanCache, TemplateKey};
pub use service::{QueryAnswer, QueryService, ServeError};
