//! `csq_server` — serve SPARQL over HTTP against a generated LUBM cluster.
//!
//! ```text
//! csq_server [--addr HOST:PORT] [--threads N|auto] [--scale U] [--plan-cache N|off]
//! ```
//!
//! Loads a LUBM graph at `--scale U` universities onto a 7-node simulated
//! cluster (statistics computed in parallel on the same thread budget),
//! starts a persistent serving scheduler with `--threads` workers, and
//! answers until killed. `--plan-cache` bounds the template plan cache
//! (default 128 entries) or disables it with `off`:
//!
//! ```text
//! curl 'http://127.0.0.1:7878/query?name=Q4'
//! curl -d 'SELECT ?x ?y WHERE { ?x ub:advisor ?y }' http://127.0.0.1:7878/sparql
//! ```

use cliquesquare_mapreduce::{Cluster, ClusterConfig, Runtime};
use cliquesquare_rdf::{LubmGenerator, LubmScale};
use cliquesquare_server::{HttpServer, QueryService, ServerConfig};
use std::sync::Arc;

fn flag_value<'a>(args: &'a [String], flag: &str) -> Option<&'a str> {
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        if arg == flag {
            return iter.next().map(String::as_str);
        }
        if let Some(value) = arg.strip_prefix(flag).and_then(|v| v.strip_prefix('=')) {
            return Some(value);
        }
    }
    None
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let addr = flag_value(&args, "--addr").unwrap_or("127.0.0.1:7878");
    let threads = match Runtime::try_from_option(flag_value(&args, "--threads").unwrap_or("auto")) {
        Ok(runtime) => runtime.threads(),
        Err(error) => {
            eprintln!("error: invalid --threads: {error}");
            std::process::exit(2);
        }
    };
    let universities = flag_value(&args, "--scale")
        .and_then(|value| value.trim().parse::<usize>().ok())
        .unwrap_or(1)
        .max(1);

    let plan_cache = match flag_value(&args, "--plan-cache").unwrap_or("128").trim() {
        "off" | "0" => None,
        value => match value.parse::<usize>() {
            Ok(capacity) => Some(capacity),
            Err(_) => {
                eprintln!("error: invalid --plan-cache (expected a capacity or `off`)");
                std::process::exit(2);
            }
        },
    };

    eprintln!("loading LUBM ({universities} universities) onto 7 nodes …");
    let graph = LubmGenerator::new(LubmScale::with_universities(universities)).generate();
    let triples = graph.len();
    let cluster = Cluster::load_with(
        graph,
        ClusterConfig::default(),
        &Runtime::with_threads(threads),
    );
    let service =
        Arc::new(QueryService::new(cluster, Runtime::serving(threads)).with_plan_cache(plan_cache));

    let server = HttpServer::bind(Arc::clone(&service), addr, ServerConfig::default())
        .unwrap_or_else(|error| {
            eprintln!("error: cannot bind {addr}: {error}");
            std::process::exit(1);
        });
    eprintln!(
        "serving {triples} triples on http://{} ({threads} worker thread(s)); \
         GET /health, GET /query?name=Q4, POST /sparql",
        server.local_addr().expect("bound address")
    );
    if let Err(error) = server.serve() {
        eprintln!("error: accept loop failed: {error}");
        std::process::exit(1);
    }
}
