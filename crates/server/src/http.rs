//! A minimal HTTP/1.1 SPARQL endpoint on `std::net::TcpListener`.
//!
//! Routes:
//!
//! * `GET /health` — liveness plus serving counters.
//! * `GET /metrics` — the process-wide metric registry in Prometheus text
//!   exposition format.
//! * `POST /sparql` — the request body is the SPARQL text.
//! * `GET /sparql?query=…` — percent-encoded SPARQL text in the URL.
//! * `GET /query?name=Q4` — a named query from the LUBM catalog.
//!
//! The query routes accept `profile=1` in the query string, which attaches a
//! per-query execution profile (parse → plan → per-job execute span tree) to
//! the JSON answer; answers are bit-identical with or without it.
//!
//! Every error is a structured JSON body with the status the
//! [`ServeError`] maps to (400 malformed query, 404 unknown name or route,
//! 408 read timeout, 413 oversized request, 500 contained execution panic).
//! Each connection is handled on its own thread with read/write timeouts;
//! the actual query work all funnels into the service's shared serving
//! runtime.

use crate::service::{QueryAnswer, QueryService, ServeError};
use cliquesquare_obs::LATENCY_SECONDS_BUCKETS;
use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::{TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

/// Configuration of the HTTP front end.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServerConfig {
    /// Maximum accepted request size (headers + body) in bytes; anything
    /// larger is rejected with 413 before being read in full.
    pub max_request_bytes: usize,
    /// Per-connection read timeout: a client that stalls mid-request gets a
    /// 408 and its connection closed. `None` waits forever.
    pub read_timeout: Option<Duration>,
    /// Per-connection write timeout: a client that stops draining its
    /// response loses the connection. `None` waits forever.
    pub write_timeout: Option<Duration>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            max_request_bytes: 64 * 1024,
            read_timeout: Some(Duration::from_secs(10)),
            write_timeout: Some(Duration::from_secs(10)),
        }
    }
}

/// The accept loop around a [`QueryService`].
#[derive(Debug)]
pub struct HttpServer {
    listener: TcpListener,
    service: Arc<QueryService>,
    config: ServerConfig,
    shutdown: Arc<AtomicBool>,
}

/// Stops a running [`HttpServer`] from another thread.
#[derive(Debug, Clone)]
pub struct ShutdownHandle {
    addr: std::net::SocketAddr,
    shutdown: Arc<AtomicBool>,
}

impl ShutdownHandle {
    /// Signals the accept loop to exit (waking it with one local connect).
    pub fn stop(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
        let _ = TcpStream::connect(self.addr);
    }
}

impl HttpServer {
    /// Binds the endpoint to `addr` (use port 0 to pick a free port).
    pub fn bind(
        service: Arc<QueryService>,
        addr: impl ToSocketAddrs,
        config: ServerConfig,
    ) -> io::Result<Self> {
        Ok(Self {
            listener: TcpListener::bind(addr)?,
            service,
            config,
            shutdown: Arc::new(AtomicBool::new(false)),
        })
    }

    /// The bound address.
    pub fn local_addr(&self) -> io::Result<std::net::SocketAddr> {
        self.listener.local_addr()
    }

    /// A handle that stops [`serve`](Self::serve) from another thread.
    pub fn shutdown_handle(&self) -> io::Result<ShutdownHandle> {
        Ok(ShutdownHandle {
            addr: self.listener.local_addr()?,
            shutdown: Arc::clone(&self.shutdown),
        })
    }

    /// Runs the accept loop until [`ShutdownHandle::stop`] is called. Each
    /// connection gets a short-lived handler thread; a handler that fails
    /// mid-write only loses its own connection.
    pub fn serve(&self) -> io::Result<()> {
        for stream in self.listener.incoming() {
            if self.shutdown.load(Ordering::SeqCst) {
                break;
            }
            let Ok(stream) = stream else { continue };
            let service = Arc::clone(&self.service);
            let config = self.config;
            thread::spawn(move || {
                let _ = handle_connection(&service, stream, config);
            });
        }
        Ok(())
    }
}

fn handle_connection(
    service: &QueryService,
    mut stream: TcpStream,
    config: ServerConfig,
) -> io::Result<()> {
    let started = Instant::now();
    stream.set_read_timeout(config.read_timeout)?;
    stream.set_write_timeout(config.write_timeout)?;
    let (endpoint, response) = match read_request(&mut stream, config.max_request_bytes) {
        Ok(request) => (endpoint_label(&request.path), route(service, &request)),
        Err(RequestError::Serve(error)) => ("error", error_response(&error)),
        Err(RequestError::Io(error)) if is_timeout(&error) => {
            // The client never delivered a full request; tell it why before
            // closing, best-effort.
            let response = error_response(&ServeError::Timeout);
            observe_request("error", response.status, started.elapsed().as_secs_f64());
            let _ = write_response(&mut stream, &response);
            return Ok(());
        }
        Err(RequestError::Io(error)) => return Err(error),
    };
    observe_request(endpoint, response.status, started.elapsed().as_secs_f64());
    write_response(&mut stream, &response)
}

/// Bounded-cardinality endpoint label for the request metrics.
fn endpoint_label(path: &str) -> &'static str {
    match path {
        "/health" | "/" => "health",
        "/metrics" => "metrics",
        "/sparql" => "sparql",
        "/query" => "query",
        _ => "other",
    }
}

/// Records one handled request in the global metric registry.
fn observe_request(endpoint: &'static str, status: u16, seconds: f64) {
    let registry = cliquesquare_obs::global();
    let labels = [("endpoint", endpoint)];
    registry
        .counter("csq_http_requests_total", "HTTP requests handled", &labels)
        .inc();
    if status >= 400 {
        registry
            .counter(
                "csq_http_errors_total",
                "HTTP requests answered with a 4xx/5xx status",
                &labels,
            )
            .inc();
    }
    registry
        .histogram(
            "csq_http_request_seconds",
            "End-to-end HTTP request handling time",
            &labels,
            LATENCY_SECONDS_BUCKETS,
        )
        .observe(seconds);
}

/// Whether an I/O error is the socket read/write timeout firing. Unix
/// reports `WouldBlock` for `SO_RCVTIMEO`, Windows `TimedOut`.
fn is_timeout(error: &io::Error) -> bool {
    matches!(
        error.kind(),
        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
    )
}

/// A parsed (enough) HTTP request.
#[derive(Debug)]
struct Request {
    method: String,
    /// Path without the query string.
    path: String,
    /// Raw query string (no leading `?`), possibly empty.
    query_string: String,
    body: String,
}

enum RequestError {
    Serve(ServeError),
    Io(io::Error),
}

impl From<io::Error> for RequestError {
    fn from(error: io::Error) -> Self {
        RequestError::Io(error)
    }
}

fn read_request(stream: &mut TcpStream, max_bytes: usize) -> Result<Request, RequestError> {
    let mut reader = BufReader::new(stream);
    let mut request_line = String::new();
    reader.read_line(&mut request_line)?;
    let mut parts = request_line.split_whitespace();
    let method = parts.next().unwrap_or_default().to_string();
    let target = parts.next().unwrap_or_default().to_string();
    if method.is_empty() || target.is_empty() {
        return Err(RequestError::Serve(ServeError::BadQuery(
            "empty or malformed request line".to_string(),
        )));
    }

    let mut content_length = 0usize;
    let mut header_bytes = request_line.len();
    loop {
        let mut line = String::new();
        reader.read_line(&mut line)?;
        header_bytes += line.len();
        if header_bytes > max_bytes {
            return Err(RequestError::Serve(ServeError::TooLarge {
                limit: max_bytes,
                actual: header_bytes,
            }));
        }
        let line = line.trim_end();
        if line.is_empty() {
            break;
        }
        if let Some(value) = header_value(line, "content-length") {
            content_length = value.trim().parse().map_err(|_| {
                RequestError::Serve(ServeError::BadQuery(format!(
                    "unparseable Content-Length: {value:?}"
                )))
            })?;
        }
    }

    if header_bytes + content_length > max_bytes {
        // Drain the (bounded) oversized body before responding, so closing
        // the socket doesn't RST the client mid-read. Truly unbounded
        // declarations are abandoned and the connection dropped.
        const DRAIN_CAP: usize = 1 << 20;
        if content_length <= DRAIN_CAP {
            io::copy(
                &mut reader.by_ref().take(content_length as u64),
                &mut io::sink(),
            )?;
        }
        return Err(RequestError::Serve(ServeError::TooLarge {
            limit: max_bytes,
            actual: header_bytes + content_length,
        }));
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body)?;
    let body = String::from_utf8_lossy(&body).into_owned();

    let (path, query_string) = match target.split_once('?') {
        Some((path, query)) => (path.to_string(), query.to_string()),
        None => (target, String::new()),
    };
    Ok(Request {
        method,
        path,
        query_string,
        body,
    })
}

/// The value of `name: value` if `line` is that header (case-insensitive).
fn header_value<'a>(line: &'a str, name: &str) -> Option<&'a str> {
    let (key, value) = line.split_once(':')?;
    key.trim().eq_ignore_ascii_case(name).then(|| value.trim())
}

/// The decoded value of `key=…` in a query string.
fn query_param(query_string: &str, key: &str) -> Option<String> {
    query_string.split('&').find_map(|pair| {
        let (k, v) = pair.split_once('=')?;
        (k == key).then(|| percent_decode(v))
    })
}

/// Percent-decoding (plus `+` as space), tolerant of malformed escapes.
fn percent_decode(text: &str) -> String {
    let bytes = text.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'+' => out.push(b' '),
            b'%' => {
                match bytes
                    .get(i + 1..i + 3)
                    .and_then(|hex| std::str::from_utf8(hex).ok())
                    .and_then(|hex| u8::from_str_radix(hex, 16).ok())
                {
                    Some(byte) => {
                        out.push(byte);
                        i += 2;
                    }
                    None => out.push(b'%'),
                }
            }
            byte => out.push(byte),
        }
        i += 1;
    }
    String::from_utf8_lossy(&out).into_owned()
}

/// A rendered response: status, reason, content type, body.
struct Response {
    status: u16,
    reason: &'static str,
    content_type: &'static str,
    body: String,
}

/// Whether the query string asks for a per-query execution profile.
fn wants_profile(query_string: &str) -> bool {
    matches!(
        query_param(query_string, "profile").as_deref(),
        Some("1") | Some("true")
    )
}

fn route(service: &QueryService, request: &Request) -> Response {
    let profile = wants_profile(&request.query_string);
    match (request.method.as_str(), request.path.as_str()) {
        ("GET", "/health") | ("GET", "/") => {
            let (served, failed) = service.counters();
            ok_body(format!(
                "{{\"status\": \"ok\", \"threads\": {}, \"served\": {served}, \"failed\": {failed}}}\n",
                service.threads()
            ))
        }
        ("GET", "/metrics") => Response {
            status: 200,
            reason: "OK",
            content_type: "text/plain; version=0.0.4",
            body: cliquesquare_obs::global().render_prometheus(),
        },
        ("POST", "/sparql") => answer(service.execute_text_opts(&request.body, profile)),
        ("GET", "/sparql") => match query_param(&request.query_string, "query") {
            Some(text) => answer(service.execute_text_opts(&text, profile)),
            None => error_response(&ServeError::BadQuery(
                "missing ?query= parameter".to_string(),
            )),
        },
        ("GET", "/query") => match query_param(&request.query_string, "name") {
            Some(name) => answer(service.execute_named_opts(&name, profile)),
            None => error_response(&ServeError::BadQuery(
                "missing ?name= parameter".to_string(),
            )),
        },
        (_, path) => error_response(&ServeError::UnknownQuery(path.to_string())),
    }
}

fn answer(result: Result<QueryAnswer, ServeError>) -> Response {
    match result {
        Ok(answer) => ok_body(render_answer(&answer)),
        Err(error) => error_response(&error),
    }
}

fn ok_body(body: String) -> Response {
    Response {
        status: 200,
        reason: "OK",
        content_type: "application/json",
        body,
    }
}

fn error_response(error: &ServeError) -> Response {
    Response {
        status: error.status(),
        reason: error.reason(),
        content_type: "application/json",
        body: format!(
            "{{\"error\": \"{}\", \"status\": {}}}\n",
            json_escape(&error.to_string()),
            error.status()
        ),
    }
}

fn render_answer(answer: &QueryAnswer) -> String {
    let mut json = String::new();
    json.push_str("{\n");
    json.push_str(&format!(
        "  \"query\": \"{}\",\n",
        json_escape(&answer.query)
    ));
    json.push_str(&format!(
        "  \"variables\": [{}],\n",
        answer
            .variables
            .iter()
            .map(|v| format!("\"{}\"", json_escape(v)))
            .collect::<Vec<_>>()
            .join(", ")
    ));
    json.push_str(&format!("  \"total_rows\": {},\n", answer.total_rows));
    json.push_str(&format!("  \"truncated\": {},\n", answer.truncated));
    json.push_str(&format!(
        "  \"jobs\": \"{}\",\n",
        json_escape(&answer.job_descriptor)
    ));
    json.push_str(&format!(
        "  \"simulated_seconds\": {:.6},\n",
        answer.simulated_seconds
    ));
    json.push_str(&format!(
        "  \"wall_seconds\": {:.6},\n",
        answer.wall_seconds
    ));
    json.push_str("  \"rows\": [\n");
    for (index, row) in answer.rows.iter().enumerate() {
        json.push_str(&format!(
            "    [{}]{}\n",
            row.iter()
                .map(|cell| format!("\"{}\"", json_escape(cell)))
                .collect::<Vec<_>>()
                .join(", "),
            if index + 1 == answer.rows.len() {
                ""
            } else {
                ","
            }
        ));
    }
    match &answer.profile {
        Some(profile) => {
            json.push_str("  ],\n");
            json.push_str(&format!("  \"profile\": {}\n}}\n", profile.to_json()));
        }
        None => json.push_str("  ]\n}\n"),
    }
    json
}

fn json_escape(text: &str) -> String {
    let mut out = String::with_capacity(text.len());
    for c in text.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn write_response(stream: &mut TcpStream, response: &Response) -> io::Result<()> {
    write!(
        stream,
        "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{}",
        response.status,
        response.reason,
        response.content_type,
        response.body.len(),
        response.body
    )?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percent_decoding_handles_escapes_plus_and_garbage() {
        assert_eq!(percent_decode("a%20b+c"), "a b c");
        assert_eq!(percent_decode("%3Fx"), "?x");
        assert_eq!(percent_decode("100%"), "100%");
        assert_eq!(percent_decode("%zz"), "%zz");
    }

    #[test]
    fn query_params_are_extracted_by_key() {
        assert_eq!(query_param("name=Q4&x=1", "name").as_deref(), Some("Q4"));
        assert_eq!(query_param("x=1", "name"), None);
        assert_eq!(
            query_param("query=SELECT%20%3Fx", "query").as_deref(),
            Some("SELECT ?x")
        );
    }

    #[test]
    fn header_values_are_case_insensitive() {
        assert_eq!(
            header_value("Content-Length: 42", "content-length"),
            Some("42")
        );
        assert_eq!(header_value("Host: x", "content-length"), None);
    }

    #[test]
    fn json_escaping_covers_quotes_and_control_characters() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
    }
}
