//! The serving boundary: SPARQL text in, structured answers or errors out.

use crate::plancache::{CachedPlan, PlanCache, TemplateKey, DEFAULT_CAPACITY};
use cliquesquare_engine::{
    rebind_constants, translate, Csq, CsqConfig, Executor, MapReduceCostModel, PhysicalPlan,
};
use cliquesquare_mapreduce::{Cluster, Runtime};
use cliquesquare_obs::{QueryProfile, SpanNode};
use cliquesquare_querygen::lubm_queries::lubm_queries;
use cliquesquare_sparql::parser::parse_query;
use cliquesquare_sparql::BgpQuery;
use std::collections::{BTreeMap, HashMap};
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Default cap on the number of result rows decoded into one answer, so a
/// single huge query cannot balloon an HTTP response without bound. The full
/// distinct count is always reported.
pub const DEFAULT_MAX_ROWS: usize = 1_000;

/// A structured serving error. Nothing else crosses the serving boundary:
/// worker panics are caught, the job's wave is cancelled on the scheduler,
/// and the failure surfaces here as [`ServeError::Internal`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeError {
    /// The request text is not a well-formed BGP query (HTTP 400).
    BadQuery(String),
    /// The request asked for a named query the service does not know
    /// (HTTP 404).
    UnknownQuery(String),
    /// The request body exceeds the configured size limit (HTTP 413).
    TooLarge {
        /// The configured limit in bytes.
        limit: usize,
        /// The size the request declared or reached.
        actual: usize,
    },
    /// Query execution panicked; the job was cancelled and the worker pool
    /// survived (HTTP 500).
    Internal(String),
    /// The client did not deliver its request within the connection's read
    /// timeout (HTTP 408).
    Timeout,
}

impl ServeError {
    /// The HTTP status code this error maps to.
    pub fn status(&self) -> u16 {
        match self {
            ServeError::BadQuery(_) => 400,
            ServeError::UnknownQuery(_) => 404,
            ServeError::TooLarge { .. } => 413,
            ServeError::Internal(_) => 500,
            ServeError::Timeout => 408,
        }
    }

    /// The HTTP reason phrase for [`status`](Self::status).
    pub fn reason(&self) -> &'static str {
        match self {
            ServeError::BadQuery(_) => "Bad Request",
            ServeError::UnknownQuery(_) => "Not Found",
            ServeError::TooLarge { .. } => "Payload Too Large",
            ServeError::Internal(_) => "Internal Server Error",
            ServeError::Timeout => "Request Timeout",
        }
    }
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::BadQuery(message) => write!(f, "malformed query: {message}"),
            ServeError::UnknownQuery(name) => write!(f, "unknown query name: {name:?}"),
            ServeError::TooLarge { limit, actual } => {
                write!(
                    f,
                    "request of {actual} bytes exceeds the {limit}-byte limit"
                )
            }
            ServeError::Internal(message) => write!(f, "query execution failed: {message}"),
            ServeError::Timeout => write!(f, "request not received before the read timeout"),
        }
    }
}

/// One served query's answer: the decoded distinct bindings plus the
/// execution facts a client needs to reason about them.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryAnswer {
    /// The query's name (empty for ad-hoc SPARQL text).
    pub query: String,
    /// The projected variables, in schema order (`?x`, `?y`, …).
    pub variables: Vec<String>,
    /// Decoded distinct rows in canonical order, capped at the service's
    /// row limit.
    pub rows: Vec<Vec<String>>,
    /// The full distinct answer count (may exceed `rows.len()`).
    pub total_rows: usize,
    /// Whether `rows` was truncated to the row limit.
    pub truncated: bool,
    /// Paper-style job descriptor of the executed plan (`"M"`, `"1"`, …).
    pub job_descriptor: String,
    /// Simulated response time on the modeled cluster, in seconds.
    pub simulated_seconds: f64,
    /// Measured wall-clock execution time, in seconds.
    pub wall_seconds: f64,
    /// Measured wall-clock planning time (plan choice + translation on a
    /// cache miss, constant rebinding on a hit), in seconds. Disjoint from
    /// [`wall_seconds`](Self::wall_seconds), which covers execution only.
    pub plan_seconds: f64,
    /// Whether the physical plan came from the template plan cache.
    pub cache_hit: bool,
    /// Per-query execution profile (parse → plan → execute span tree),
    /// present only when the request asked for one with `profile=1`.
    pub profile: Option<QueryProfile>,
}

/// A shared, thread-safe query service over one loaded cluster.
///
/// The cluster's graph and partitioned store are immutable `Arc` snapshots:
/// every in-flight query reads the same loaded data with no copies and no
/// locks. All queries execute through one [`Runtime`] — pass a
/// [`Runtime::serving`] runtime to interleave their task waves on a shared
/// worker pool.
#[derive(Debug)]
pub struct QueryService {
    csq: Csq,
    executor: Executor,
    named: BTreeMap<String, BgpQuery>,
    max_rows: usize,
    plan_cache: Option<PlanCache>,
    served: AtomicU64,
    failed: AtomicU64,
}

impl QueryService {
    /// Creates a service over `cluster` executing on `runtime`. The named
    /// query catalog is the LUBM mix (`Q1` … `Q14`). The template plan
    /// cache is on by default with [`DEFAULT_CAPACITY`] entries; disable it
    /// with [`with_plan_cache`](Self::with_plan_cache)`(None)`.
    pub fn new(cluster: Cluster, runtime: Runtime) -> Self {
        let named = lubm_queries()
            .into_iter()
            .map(|q| (q.name().to_string(), q))
            .collect();
        Self {
            executor: Executor::with_runtime(&cluster, runtime),
            csq: Csq::new(cluster, CsqConfig::default()),
            named,
            max_rows: DEFAULT_MAX_ROWS,
            plan_cache: Some(PlanCache::new(DEFAULT_CAPACITY)),
            served: AtomicU64::new(0),
            failed: AtomicU64::new(0),
        }
    }

    /// This service with a different result-row cap.
    pub fn with_max_rows(mut self, max_rows: usize) -> Self {
        self.max_rows = max_rows.max(1);
        self
    }

    /// This service with the template plan cache capped at `capacity`
    /// entries, or with the cache disabled (`None`). Answers are
    /// bit-identical either way — the cache only decides whether repeated
    /// templates pay for planning again.
    pub fn with_plan_cache(mut self, capacity: Option<usize>) -> Self {
        self.plan_cache = capacity.map(PlanCache::new);
        self
    }

    /// The plan cache, when enabled.
    pub fn plan_cache(&self) -> Option<&PlanCache> {
        self.plan_cache.as_ref()
    }

    /// The names of the catalog queries, in order.
    pub fn query_names(&self) -> Vec<String> {
        self.named.keys().cloned().collect()
    }

    /// Number of worker threads the serving runtime uses.
    pub fn threads(&self) -> usize {
        self.executor.runtime().threads()
    }

    /// `(served, failed)` request counters.
    pub fn counters(&self) -> (u64, u64) {
        (
            self.served.load(Ordering::Relaxed),
            self.failed.load(Ordering::Relaxed),
        )
    }

    /// Parses and executes ad-hoc SPARQL text.
    pub fn execute_text(&self, text: &str) -> Result<QueryAnswer, ServeError> {
        self.execute_text_opts(text, false)
    }

    /// [`execute_text`](Self::execute_text), optionally capturing a
    /// per-query execution profile. Answers are bit-identical either way;
    /// profiling only fills [`QueryAnswer::profile`].
    pub fn execute_text_opts(&self, text: &str, profile: bool) -> Result<QueryAnswer, ServeError> {
        let parse_started = Instant::now();
        let query = match parse_query(text) {
            Ok(query) => query,
            Err(error) => {
                self.failed.fetch_add(1, Ordering::Relaxed);
                return Err(ServeError::BadQuery(error.to_string()));
            }
        };
        let parse_seconds = parse_started.elapsed().as_secs_f64();
        self.run_opts(&query, profile.then_some(parse_seconds))
    }

    /// Executes a catalog query by name (`Q1` … `Q14`).
    pub fn execute_named(&self, name: &str) -> Result<QueryAnswer, ServeError> {
        self.execute_named_opts(name, false)
    }

    /// [`execute_named`](Self::execute_named), optionally capturing a
    /// per-query execution profile.
    pub fn execute_named_opts(&self, name: &str, profile: bool) -> Result<QueryAnswer, ServeError> {
        let Some(query) = self.named.get(name).cloned() else {
            self.failed.fetch_add(1, Ordering::Relaxed);
            return Err(ServeError::UnknownQuery(name.to_string()));
        };
        self.run_opts(&query, profile.then_some(0.0))
    }

    /// Plans and executes one parsed query, catching any panic at the
    /// boundary. A worker-thread panic cancels the job's remaining tasks on
    /// the scheduler, re-raises on this (submitting) thread, and is caught
    /// here — the worker pool keeps serving other jobs throughout.
    pub fn run(&self, query: &BgpQuery) -> Result<QueryAnswer, ServeError> {
        self.run_opts(query, None)
    }

    /// `parse_seconds` is `Some` to request a profile; its value is the
    /// already-spent parse time credited as the tree's first span.
    fn run_opts(
        &self,
        query: &BgpQuery,
        parse_seconds: Option<f64>,
    ) -> Result<QueryAnswer, ServeError> {
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            self.run_unguarded(query, parse_seconds)
        }));
        match outcome {
            Ok(answer) => {
                self.served.fetch_add(1, Ordering::Relaxed);
                Ok(answer)
            }
            Err(payload) => {
                self.failed.fetch_add(1, Ordering::Relaxed);
                Err(ServeError::Internal(panic_message(payload.as_ref())))
            }
        }
    }

    /// Produces the physical plan for `query`: on a plan-cache hit the
    /// cached template plan is rebound to this query's constants (skipping
    /// decomposition, plan-space search and translation entirely); on a
    /// miss the full pipeline runs and the result is cached under the
    /// query's template key. Returns the plan, the optimizer milliseconds
    /// (0 on a hit), whether this was a hit, and — on a hit — the map from
    /// the cached plan's variable names to this query's.
    fn plan_physical(
        &self,
        query: &BgpQuery,
    ) -> (
        Arc<PhysicalPlan>,
        f64,
        bool,
        Option<HashMap<String, String>>,
    ) {
        let graph = self.csq.cluster().graph();
        let stats_epoch = self.csq.cluster().stats_epoch();
        let key = match &self.plan_cache {
            Some(cache) => {
                let key = TemplateKey::of(query);
                if key.is_none() {
                    cache.note_uncacheable();
                }
                key
            }
            None => None,
        };
        if let (Some(cache), Some(key)) = (&self.plan_cache, &key) {
            if let Some(cached) = cache.lookup(key, stats_epoch) {
                match rebind_constants(&cached.plan, query, graph) {
                    Some(rebound) => {
                        // The plan carries the template's variable names;
                        // first-occurrence order aligns them with this
                        // query's names for presenting the answer schema.
                        let rename = cached
                            .variables
                            .iter()
                            .zip(query.variables())
                            .map(|(t, q)| (t.name().to_string(), q.name().to_string()))
                            .collect();
                        return (Arc::new(rebound), 0.0, true, Some(rename));
                    }
                    // A template-key collision (the key should rule this
                    // out; guarded anyway): drop the colliding entry and
                    // fall back to full planning.
                    None => cache.remove(key),
                }
            }
        }
        let (_, chosen, optimize_ms) = self.csq.plan(query);
        let plan = Arc::new(translate(&chosen, graph));
        if let (Some(cache), Some(key)) = (&self.plan_cache, key) {
            cache.insert(
                key,
                stats_epoch,
                CachedPlan {
                    plan: Arc::clone(&plan),
                    variables: query.variables(),
                },
            );
        }
        (plan, optimize_ms, false, None)
    }

    fn run_unguarded(&self, query: &BgpQuery, parse_seconds: Option<f64>) -> QueryAnswer {
        let epoch = Instant::now();
        let (physical, plan_ms, cache_hit, rename) = self.plan_physical(query);
        let plan_seconds = epoch.elapsed().as_secs_f64();
        let output = if parse_seconds.is_some() {
            let estimates = MapReduceCostModel::new(self.csq.cluster()).estimate_cards(&physical);
            self.executor
                .execute_profiled_with_estimates(&physical, &estimates)
        } else {
            self.executor.execute(&physical)
        };
        let profile = parse_seconds.map(|parse_seconds| {
            let mut root = SpanNode::new("query");
            root.wall_seconds = parse_seconds + epoch.elapsed().as_secs_f64();
            let mut parse = SpanNode::new("parse");
            parse.wall_seconds = parse_seconds;
            let mut plan = SpanNode::new("plan");
            plan.start_seconds = parse_seconds;
            plan.wall_seconds = plan_seconds;
            plan.add_attr("optimize_us", (plan_ms * 1_000.0) as u64);
            plan.add_attr("cache_hit", cache_hit as u64);
            root.children.push(parse);
            root.children.push(plan);
            if let Some(mut execute) = output.profile.clone() {
                execute.shift(parse_seconds + plan_seconds);
                root.children.push(execute);
            }
            QueryProfile {
                query: query.name().to_string(),
                threads: self.threads(),
                total_wall_seconds: root.wall_seconds,
                root,
            }
        });
        let results = output.results.distinct();
        let graph = self.csq.cluster().graph();
        let total_rows = results.len();
        let truncated = total_rows > self.max_rows;
        let rows = results
            .rows()
            .take(self.max_rows)
            .map(|row| {
                row.iter()
                    .map(|&id| match graph.decode(id) {
                        Some(term) => term.to_string(),
                        None => format!("#{id}"),
                    })
                    .collect()
            })
            .collect();
        QueryAnswer {
            query: query.name().to_string(),
            // On a cache hit the plan's schema carries the template's
            // variable names; translate them back to this query's names.
            variables: results
                .schema()
                .iter()
                .map(
                    |v| match rename.as_ref().and_then(|map| map.get(v.name())) {
                        Some(name) => format!("?{name}"),
                        None => v.to_string(),
                    },
                )
                .collect(),
            rows,
            total_rows,
            truncated,
            job_descriptor: output.job_log.descriptor(),
            simulated_seconds: output.simulated_seconds,
            wall_seconds: output.wall_seconds,
            plan_seconds,
            cache_hit,
            profile,
        }
    }
}

/// Best-effort text of a panic payload (`&str` and `String` payloads cover
/// every `panic!`/`assert!` in the workspace).
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(text) = payload.downcast_ref::<&str>() {
        (*text).to_string()
    } else if let Some(text) = payload.downcast_ref::<String>() {
        text.clone()
    } else {
        "query worker panicked".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cliquesquare_mapreduce::ClusterConfig;
    use cliquesquare_rdf::{LubmGenerator, LubmScale};
    use std::sync::Arc;

    fn service() -> QueryService {
        let graph = LubmGenerator::new(LubmScale::tiny()).generate();
        let cluster = Cluster::load(graph, ClusterConfig::with_nodes(4));
        QueryService::new(cluster, Runtime::serving(2))
    }

    #[test]
    fn named_query_answers_match_the_single_job_path() {
        let svc = service();
        let answer = svc.execute_named("Q1").expect("Q1 serves");
        let report = svc.csq.run(&svc.named["Q1"]);
        assert_eq!(answer.total_rows, report.result_count);
        assert_eq!(answer.job_descriptor, report.job_descriptor);
        assert_eq!(svc.counters().0, 1);
    }

    #[test]
    fn malformed_sparql_is_a_400() {
        let svc = service();
        let error = svc.execute_text("SELECT WHERE oops {").unwrap_err();
        assert_eq!(error.status(), 400);
        assert!(matches!(error, ServeError::BadQuery(_)));
        assert_eq!(svc.counters(), (0, 1));
    }

    #[test]
    fn unknown_query_name_is_a_404() {
        let svc = service();
        let error = svc.execute_named("Q99").unwrap_err();
        assert_eq!(error.status(), 404);
        assert_eq!(error.to_string(), "unknown query name: \"Q99\"");
    }

    #[test]
    fn planner_panic_is_contained_and_the_pool_survives() {
        let svc = service();
        // A disconnected BGP makes the planner panic ("no plan found"); the
        // serving boundary must turn that into a 500 and keep serving.
        let error = svc
            .execute_text("SELECT ?a WHERE { ?a ub:p ?b . ?x ub:q ?y }")
            .unwrap_err();
        assert_eq!(error.status(), 500);
        assert!(error.to_string().contains("no plan found"));
        assert!(svc.execute_named("Q2").is_ok());
    }

    #[test]
    fn row_cap_truncates_but_reports_the_full_count() {
        let svc = service().with_max_rows(1);
        let answer = svc
            .execute_text("SELECT ?x ?y WHERE { ?x ub:advisor ?y }")
            .expect("advisor query serves");
        assert!(answer.total_rows > 1);
        assert_eq!(answer.rows.len(), 1);
        assert!(answer.truncated);
    }

    #[test]
    fn concurrent_clients_get_bit_identical_answers() {
        let svc = Arc::new(service());
        let solo: Vec<QueryAnswer> = ["Q1", "Q2", "Q4", "Q14"]
            .iter()
            .map(|name| svc.execute_named(name).unwrap())
            .collect();
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let svc = Arc::clone(&svc);
                std::thread::spawn(move || {
                    ["Q1", "Q2", "Q4", "Q14"]
                        .iter()
                        .map(|name| svc.execute_named(name).unwrap())
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        for handle in handles {
            let interleaved = handle.join().unwrap();
            for (a, b) in solo.iter().zip(&interleaved) {
                assert_eq!(a.rows, b.rows);
                assert_eq!(a.total_rows, b.total_rows);
                assert_eq!(a.job_descriptor, b.job_descriptor);
            }
        }
    }
}
