//! Structure-keyed template plan cache: optimize once, serve many.
//!
//! Serving workloads repeat query *templates* — the same BGP shape with
//! different constants (a different class, a different department IRI).
//! The expensive part of answering such a query is everything between
//! parsing and execution: clique decomposition, plan-space exploration,
//! cost-based choice and physical translation. None of it depends on the
//! *values* of the constants, only on where constants sit and how the
//! variables connect.
//!
//! [`TemplateKey`] captures exactly that structure: each pattern position is
//! recorded as a canonically renamed variable, an anonymous constant, or the
//! `rdf:type` property (which must stay distinct from other constants —
//! translation routes `rdf:type` patterns to class-split partition files
//! instead of residual filters). [`PlanCache`] maps keys to finished
//! physical plans; a hit skips straight to
//! [`cliquesquare_engine::rebind_constants`], which splices the new
//! constants into the cached plan in one pass over its operators.
//!
//! Entries are invalidated by the cluster's statistics epoch (a reload may
//! change both the data and the plans the cost model prefers) and evicted
//! least-recently-used beyond [`DEFAULT_CAPACITY`]. Hits, misses and
//! evictions are exported as `csq_plancache_{hits,misses,evictions}_total`
//! in the global metric registry.

use cliquesquare_engine::PhysicalPlan;
use cliquesquare_obs::Counter;
use cliquesquare_rdf::Term;
use cliquesquare_sparql::{BgpQuery, PatternTerm, Variable};
use std::collections::HashMap;
use std::sync::{Arc, Mutex};

/// Default maximum number of cached template plans.
pub const DEFAULT_CAPACITY: usize = 128;

/// One pattern position in a template: a canonically renamed variable, an
/// anonymous constant, or the `rdf:type` property. `rdf:type` gets its own
/// slot kind because translation branches on it: a type pattern's object
/// narrows the scan to a class-split file, while any other constant object
/// becomes a residual filter condition — rebinding across that divide would
/// silently drop the restriction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum TemplateSlot {
    /// A variable, named by first-occurrence index over the whole query.
    Variable(u32),
    /// A constant whose value is erased by the template.
    Constant,
    /// The `rdf:type` property constant.
    TypeProperty,
}

/// The structural identity of a query: constants stripped, variables
/// canonically renamed. Two queries with equal keys translate to physical
/// plans that differ only in constant values, so one cached plan serves
/// both via constant rebinding.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct TemplateKey {
    /// `[subject, property, object]` slots per pattern, in pattern order.
    patterns: Vec<[TemplateSlot; 3]>,
    /// Projection as canonical variable ids, in projection order.
    distinguished: Vec<u32>,
}

impl TemplateKey {
    /// Computes the template of `query`, or `None` for queries the cache
    /// should pass through (a projected variable that occurs in no
    /// pattern never reaches a plan's schema, so such queries are not
    /// cacheable by structure alone).
    pub fn of(query: &BgpQuery) -> Option<Self> {
        let rdf_type = Term::iri(cliquesquare_rdf::term::vocab::RDF_TYPE);
        let mut canonical: HashMap<String, u32> = HashMap::new();
        let mut patterns = Vec::with_capacity(query.patterns().len());
        for pattern in query.patterns() {
            let mut slots = [TemplateSlot::Constant; 3];
            for (slot, (term, is_property)) in slots.iter_mut().zip([
                (&pattern.subject, false),
                (&pattern.property, true),
                (&pattern.object, false),
            ]) {
                *slot = match term {
                    PatternTerm::Variable(v) => {
                        let next = canonical.len() as u32;
                        TemplateSlot::Variable(
                            *canonical.entry(v.name().to_string()).or_insert(next),
                        )
                    }
                    PatternTerm::Constant(t) if is_property && *t == rdf_type => {
                        TemplateSlot::TypeProperty
                    }
                    PatternTerm::Constant(_) => TemplateSlot::Constant,
                };
            }
            patterns.push(slots);
        }
        let distinguished = query
            .distinguished()
            .iter()
            .map(|v| canonical.get(v.name()).copied())
            .collect::<Option<Vec<u32>>>()?;
        Some(Self {
            patterns,
            distinguished,
        })
    }
}

/// A cache hit: the template's finished physical plan plus the template
/// query's variables in first-occurrence order. The plan's operators still
/// carry the template's variable *names*; zipping `variables` against the
/// incoming query's first-occurrence variables gives the rename map for
/// presenting answer schemas under the incoming query's names.
#[derive(Debug, Clone)]
pub struct CachedPlan {
    /// The physical plan built for the template query.
    pub plan: Arc<PhysicalPlan>,
    /// The template query's variables, in first-occurrence order.
    pub variables: Vec<Variable>,
}

#[derive(Debug)]
struct Entry {
    cached: CachedPlan,
    epoch: u64,
    last_used: u64,
}

#[derive(Debug, Default)]
struct Inner {
    entries: HashMap<TemplateKey, Entry>,
    tick: u64,
}

/// A bounded, thread-safe template → plan cache with LRU eviction and
/// statistics-epoch invalidation.
#[derive(Debug)]
pub struct PlanCache {
    inner: Mutex<Inner>,
    capacity: usize,
    hits: Arc<Counter>,
    misses: Arc<Counter>,
    evictions: Arc<Counter>,
}

impl PlanCache {
    /// Creates a cache holding at most `capacity` plans (at least one).
    pub fn new(capacity: usize) -> Self {
        let registry = cliquesquare_obs::global();
        Self {
            inner: Mutex::new(Inner::default()),
            capacity: capacity.max(1),
            hits: registry.counter(
                "csq_plancache_hits_total",
                "Plan cache lookups answered from a cached template plan",
                &[],
            ),
            misses: registry.counter(
                "csq_plancache_misses_total",
                "Plan cache lookups that fell through to full planning",
                &[],
            ),
            evictions: registry.counter(
                "csq_plancache_evictions_total",
                "Plan cache entries dropped (LRU pressure or stale epoch)",
                &[],
            ),
        }
    }

    /// Looks up `key`, counting a hit or a miss. An entry whose epoch is not
    /// `epoch` was planned against superseded statistics: it is dropped
    /// (counted as an eviction) and the lookup misses.
    pub fn lookup(&self, key: &TemplateKey, epoch: u64) -> Option<CachedPlan> {
        let mut inner = self.inner.lock().expect("plan cache lock");
        inner.tick += 1;
        let tick = inner.tick;
        match inner.entries.get_mut(key) {
            Some(entry) if entry.epoch == epoch => {
                entry.last_used = tick;
                self.hits.inc();
                Some(entry.cached.clone())
            }
            Some(_) => {
                inner.entries.remove(key);
                self.evictions.inc();
                self.misses.inc();
                None
            }
            None => {
                self.misses.inc();
                None
            }
        }
    }

    /// Counts a miss for a query the cache cannot key (see
    /// [`TemplateKey::of`]), so the miss counter reflects every query that
    /// paid for full planning.
    pub fn note_uncacheable(&self) {
        self.misses.inc();
    }

    /// Inserts a freshly planned template, evicting the least recently used
    /// entry if the cache is full.
    pub fn insert(&self, key: TemplateKey, epoch: u64, cached: CachedPlan) {
        let mut inner = self.inner.lock().expect("plan cache lock");
        inner.tick += 1;
        let tick = inner.tick;
        if !inner.entries.contains_key(&key) && inner.entries.len() >= self.capacity {
            if let Some(victim) = inner
                .entries
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| k.clone())
            {
                inner.entries.remove(&victim);
                self.evictions.inc();
            }
        }
        inner.entries.insert(
            key,
            Entry {
                cached,
                epoch,
                last_used: tick,
            },
        );
    }

    /// Drops `key` outright. Used when a cached plan fails to rebind — a
    /// template collision that full planning then papers over.
    pub fn remove(&self, key: &TemplateKey) {
        let mut inner = self.inner.lock().expect("plan cache lock");
        if inner.entries.remove(key).is_some() {
            self.evictions.inc();
        }
    }

    /// Number of cached plans.
    pub fn len(&self) -> usize {
        self.inner.lock().expect("plan cache lock").entries.len()
    }

    /// Whether the cache holds no plans.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Lifetime `(hits, misses, evictions)` counter values. These read the
    /// process-wide `csq_plancache_*` series, which every cache in the
    /// process shares.
    pub fn counters(&self) -> (u64, u64, u64) {
        (self.hits.get(), self.misses.get(), self.evictions.get())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cliquesquare_sparql::parser::parse_query;

    fn key(text: &str) -> TemplateKey {
        TemplateKey::of(&parse_query(text).unwrap()).expect("cacheable")
    }

    fn dummy_plan(text: &str) -> CachedPlan {
        use cliquesquare_engine::translate;
        use cliquesquare_rdf::{LubmGenerator, LubmScale};
        let graph = LubmGenerator::new(LubmScale::tiny()).generate();
        let query = parse_query(text).unwrap();
        let logical = cliquesquare_core::Optimizer::default()
            .optimize(&query)
            .flattest_plans()
            .first()
            .map(|p| (*p).clone())
            .expect("plan");
        CachedPlan {
            plan: Arc::new(translate(&logical, &graph)),
            variables: query.variables(),
        }
    }

    #[test]
    fn templates_erase_constants_and_variable_names() {
        // Same shape, different constants and different variable names:
        // one template.
        assert_eq!(
            key("SELECT ?x WHERE { ?x rdf:type ub:GraduateStudent . ?x ub:memberOf ?d }"),
            key("SELECT ?s WHERE { ?s rdf:type ub:FullProfessor . ?s ub:memberOf ?w }"),
        );
        // rdf:type in property position is structurally different from any
        // other property constant.
        assert_ne!(
            key("SELECT ?x WHERE { ?x rdf:type ub:GraduateStudent . ?x ub:memberOf ?d }"),
            key("SELECT ?x WHERE { ?x ub:worksFor ub:GraduateStudent . ?x ub:memberOf ?d }"),
        );
        // Different variable wiring: different template.
        assert_ne!(
            key("SELECT ?x WHERE { ?x ub:advisor ?y . ?y ub:worksFor ?z }"),
            key("SELECT ?x WHERE { ?x ub:advisor ?y . ?x ub:worksFor ?z }"),
        );
        // Different projection: different template.
        assert_ne!(
            key("SELECT ?x WHERE { ?x ub:advisor ?y }"),
            key("SELECT ?y WHERE { ?x ub:advisor ?y }"),
        );
    }

    #[test]
    fn lru_eviction_drops_the_least_recently_used_template() {
        let cache = PlanCache::new(2);
        let (h0, m0, e0) = cache.counters();
        let a = key("SELECT ?x WHERE { ?x ub:advisor ?y }");
        let b = key("SELECT ?x WHERE { ?x ub:worksFor ?y . ?y ub:subOrganizationOf ?z }");
        let c = key("SELECT ?x WHERE { ?x rdf:type ub:GraduateStudent }");
        let plan = dummy_plan("SELECT ?x WHERE { ?x ub:advisor ?y }");
        cache.insert(a.clone(), 1, plan.clone());
        cache.insert(b.clone(), 1, plan.clone());
        // Touch `a` so `b` is the LRU victim.
        assert!(cache.lookup(&a, 1).is_some());
        cache.insert(c.clone(), 1, plan.clone());
        assert_eq!(cache.len(), 2);
        assert!(cache.lookup(&b, 1).is_none(), "LRU entry evicted");
        assert!(cache.lookup(&a, 1).is_some());
        assert!(cache.lookup(&c, 1).is_some());
        let (h1, m1, e1) = cache.counters();
        assert_eq!(h1 - h0, 3);
        assert_eq!(m1 - m0, 1);
        assert_eq!(e1 - e0, 1);
    }

    #[test]
    fn stale_epoch_invalidates_the_entry() {
        let cache = PlanCache::new(4);
        let (_, _, e0) = cache.counters();
        let a = key("SELECT ?x WHERE { ?x ub:advisor ?y }");
        cache.insert(
            a.clone(),
            1,
            dummy_plan("SELECT ?x WHERE { ?x ub:advisor ?y }"),
        );
        assert!(cache.lookup(&a, 1).is_some());
        // A reload bumped the statistics epoch: the plan was chosen against
        // superseded statistics and must not be served.
        assert!(cache.lookup(&a, 2).is_none());
        assert_eq!(cache.len(), 0);
        let (_, _, e1) = cache.counters();
        assert_eq!(e1 - e0, 1);
        // Re-inserting under the new epoch serves again.
        cache.insert(
            a.clone(),
            2,
            dummy_plan("SELECT ?x WHERE { ?x ub:advisor ?y }"),
        );
        assert!(cache.lookup(&a, 2).is_some());
    }
}
