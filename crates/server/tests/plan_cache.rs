//! The template plan cache under serving load: repeated templates hit, hits
//! skip optimization, and answers are byte-identical with the cache on or
//! off, solo or with many concurrent clients, at every worker count.

use cliquesquare_mapreduce::{Cluster, ClusterConfig, Runtime};
use cliquesquare_rdf::{LubmGenerator, LubmScale};
use cliquesquare_server::{QueryAnswer, QueryService};
use std::sync::Arc;

/// A template mix: three templates, each instantiated with several
/// different constants, plus one constant-free query. Every query is
/// answerable on tiny LUBM.
const MIX: &[&str] = &[
    "SELECT ?x ?d WHERE { ?x rdf:type ub:GraduateStudent . ?x ub:memberOf ?d }",
    "SELECT ?x ?d WHERE { ?x rdf:type ub:UndergraduateStudent . ?x ub:memberOf ?d }",
    "SELECT ?x ?y WHERE { ?x rdf:type ub:FullProfessor . ?x ub:worksFor ?y }",
    "SELECT ?x ?y WHERE { ?x rdf:type ub:AssistantProfessor . ?x ub:worksFor ?y }",
    "SELECT ?s ?a WHERE { ?s rdf:type ub:GraduateStudent . ?s ub:advisor ?a }",
    "SELECT ?s ?a WHERE { ?s rdf:type ub:UndergraduateStudent . ?s ub:advisor ?a }",
    "SELECT ?x ?y WHERE { ?x ub:advisor ?y }",
];

fn cluster() -> Cluster {
    let graph = LubmGenerator::new(LubmScale::tiny()).generate();
    Cluster::load(graph, ClusterConfig::with_nodes(4))
}

fn comparable(answer: &QueryAnswer) -> (Vec<String>, Vec<Vec<String>>, usize) {
    (
        answer.variables.clone(),
        answer.rows.clone(),
        answer.total_rows,
    )
}

#[test]
fn cache_on_and_off_answers_are_identical_at_every_worker_count() {
    let cluster = cluster();
    for workers in [1usize, 2, 8] {
        let cached = QueryService::new(cluster.clone(), Runtime::serving(workers));
        let uncached =
            QueryService::new(cluster.clone(), Runtime::serving(workers)).with_plan_cache(None);
        // Two passes so the second pass reads cached plans.
        for _ in 0..2 {
            for text in MIX {
                let warm = cached.execute_text(text).expect("cached serves");
                let cold = uncached.execute_text(text).expect("uncached serves");
                assert_eq!(
                    comparable(&warm),
                    comparable(&cold),
                    "answers diverge at {workers} workers for {text}"
                );
                assert!(!cold.cache_hit);
            }
        }
    }
}

#[test]
fn repeated_templates_hit_and_skip_optimization() {
    let service = QueryService::new(cluster(), Runtime::serving(2));
    let cache = service.plan_cache().expect("cache on by default");
    let (h0, m0, _) = cache.counters();

    let cold = service.execute_text(MIX[0]).expect("cold serves");
    assert!(!cold.cache_hit, "first sight of a template is a miss");

    // The same text again and a different constant of the same template
    // both hit.
    let warm_same = service.execute_text(MIX[0]).expect("warm serves");
    let warm_rebound = service.execute_text(MIX[1]).expect("rebound serves");
    assert!(warm_same.cache_hit);
    assert!(warm_rebound.cache_hit);

    let (h1, m1, _) = cache.counters();
    assert_eq!(h1 - h0, 2);
    assert_eq!(m1 - m0, 1);

    // The rebound answer matches planning the query from scratch.
    let from_scratch = QueryService::new(cluster(), Runtime::serving(2))
        .with_plan_cache(None)
        .execute_text(MIX[1])
        .expect("scratch serves");
    assert!(from_scratch.total_rows > 0);
    assert_eq!(comparable(&warm_rebound), comparable(&from_scratch));
}

#[test]
fn concurrent_clients_over_a_template_mix_match_the_solo_answers() {
    let service = Arc::new(QueryService::new(cluster(), Runtime::serving(4)));
    let solo: Vec<_> = MIX
        .iter()
        .map(|text| comparable(&service.execute_text(text).expect("solo serves")))
        .collect();
    let handles: Vec<_> = (0..6)
        .map(|client| {
            let service = Arc::clone(&service);
            std::thread::spawn(move || {
                // Each client walks the mix from a different offset so
                // cache hits and misses interleave across threads.
                (0..MIX.len())
                    .map(|i| {
                        let text = MIX[(client + i) % MIX.len()];
                        (
                            (client + i) % MIX.len(),
                            comparable(&service.execute_text(text).expect("serves")),
                        )
                    })
                    .collect::<Vec<_>>()
            })
        })
        .collect();
    for handle in handles {
        for (index, answer) in handle.join().expect("client thread") {
            assert_eq!(answer, solo[index]);
        }
    }
    let (hits, _, _) = service.plan_cache().expect("cache").counters();
    assert!(hits > 0, "concurrent template repeats should hit the cache");
}

#[test]
fn warm_planning_is_reported_separately_from_execution() {
    let service = QueryService::new(cluster(), Runtime::serving(2));
    let cold = service.execute_text(MIX[2]).expect("cold serves");
    let warm = service.execute_text(MIX[2]).expect("warm serves");
    assert!(!cold.cache_hit);
    assert!(warm.cache_hit);
    // plan_seconds is planning only — execution wall is tracked separately,
    // and both are always populated.
    assert!(cold.plan_seconds > 0.0);
    assert!(warm.plan_seconds > 0.0);
    assert!(cold.wall_seconds > 0.0);
    // The warm path rebinds constants instead of re-optimizing: it must be
    // well under the cold planning wall (generous 2x margin against noisy
    // schedulers: rebinding is microseconds, planning is milliseconds).
    assert!(
        warm.plan_seconds < cold.plan_seconds,
        "warm planning ({}) should undercut cold planning ({})",
        warm.plan_seconds,
        cold.plan_seconds
    );
}
