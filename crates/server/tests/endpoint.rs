//! Live-socket tests of the HTTP SPARQL endpoint: every status code the
//! serving boundary promises (200/400/404/408/413/500), concurrent clients
//! getting bit-identical answers, `/metrics` exposing the registry in valid
//! Prometheus text, and `profile=1` attaching a consistent span tree.

use cliquesquare_mapreduce::{Cluster, ClusterConfig, Runtime};
use cliquesquare_rdf::{LubmGenerator, LubmScale};
use cliquesquare_server::{HttpServer, QueryService, ServerConfig, ShutdownHandle};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::Duration;

struct LiveServer {
    addr: SocketAddr,
    handle: ShutdownHandle,
    thread: Option<std::thread::JoinHandle<()>>,
}

impl Drop for LiveServer {
    fn drop(&mut self) {
        self.handle.stop();
        if let Some(thread) = self.thread.take() {
            let _ = thread.join();
        }
    }
}

fn start_server(config: ServerConfig) -> LiveServer {
    let graph = LubmGenerator::new(LubmScale::tiny()).generate();
    let cluster = Cluster::load(graph, ClusterConfig::with_nodes(4));
    let service = Arc::new(QueryService::new(cluster, Runtime::serving(2)));
    let server = HttpServer::bind(service, "127.0.0.1:0", config).expect("bind");
    let addr = server.local_addr().expect("addr");
    let handle = server.shutdown_handle().expect("handle");
    let thread = std::thread::spawn(move || {
        server.serve().expect("serve");
    });
    LiveServer {
        addr,
        handle,
        thread: Some(thread),
    }
}

/// Sends one raw HTTP request and returns `(status, body)`.
fn request(addr: SocketAddr, raw: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.write_all(raw.as_bytes()).expect("write");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("read");
    let status: u16 = response
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .expect("status line");
    let body = response
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    (status, body)
}

fn get(addr: SocketAddr, target: &str) -> (u16, String) {
    request(
        addr,
        &format!("GET {target} HTTP/1.1\r\nHost: test\r\nConnection: close\r\n\r\n"),
    )
}

fn post_sparql(addr: SocketAddr, query: &str) -> (u16, String) {
    request(
        addr,
        &format!(
            "POST /sparql HTTP/1.1\r\nHost: test\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{}",
            query.len(),
            query
        ),
    )
}

#[test]
fn the_endpoint_serves_every_promised_status_code() {
    let server = start_server(ServerConfig {
        max_request_bytes: 4096,
        ..ServerConfig::default()
    });
    let addr = server.addr;

    // 200: liveness.
    let (status, body) = get(addr, "/health");
    assert_eq!(status, 200);
    assert!(body.contains("\"status\": \"ok\""));

    // 200: a named catalog query.
    let (status, body) = get(addr, "/query?name=Q1");
    assert_eq!(status, 200, "body: {body}");
    assert!(body.contains("\"query\": \"Q1\""));
    assert!(body.contains("\"total_rows\""));

    // 200: ad-hoc SPARQL via POST.
    let (status, body) = post_sparql(
        addr,
        "SELECT ?p ?s WHERE { ?p ub:worksFor ?d . ?s ub:memberOf ?d }",
    );
    assert_eq!(status, 200, "body: {body}");
    assert!(body.contains("\"rows\""));

    // 200: ad-hoc SPARQL percent-encoded in the URL.
    let (status, _) = get(
        addr,
        "/sparql?query=SELECT%20%3Fx%20%3Fy%20WHERE%20%7B%20%3Fx%20ub%3Aadvisor%20%3Fy%20%7D",
    );
    assert_eq!(status, 200);

    // 400: malformed SPARQL.
    let (status, body) = post_sparql(addr, "SELECT WHERE oops {");
    assert_eq!(status, 400);
    assert!(body.contains("malformed query"));

    // 404: unknown query name, unknown route.
    let (status, body) = get(addr, "/query?name=Q99");
    assert_eq!(status, 404);
    assert!(body.contains("unknown query name"));
    let (status, _) = get(addr, "/nope");
    assert_eq!(status, 404);

    // 413: a body larger than the configured limit is rejected up front.
    let oversized = "x".repeat(8192);
    let (status, body) = post_sparql(addr, &oversized);
    assert_eq!(status, 413);
    assert!(body.contains("exceeds"));

    // 500: a disconnected query parses but panics in the planner; the panic
    // must not cross the boundary …
    let (status, body) = post_sparql(addr, "SELECT ?a WHERE { ?a ub:p ?b . ?x ub:q ?y }");
    assert_eq!(status, 500);
    assert!(body.contains("no plan found"));

    // … and the pool keeps serving afterwards.
    let (status, _) = get(addr, "/query?name=Q2");
    assert_eq!(status, 200);
}

/// Like [`request`] but returns the raw response text (status line, headers
/// and body), for asserting on headers.
fn raw_request(addr: SocketAddr, raw: &str) -> String {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.write_all(raw.as_bytes()).expect("write");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("read");
    response
}

#[test]
fn metrics_endpoint_renders_valid_prometheus_text() {
    let server = start_server(ServerConfig::default());
    let addr = server.addr;

    // Serve one query so execution series exist, then scrape.
    let (status, _) = get(addr, "/query?name=Q1");
    assert_eq!(status, 200);
    let response = raw_request(
        addr,
        "GET /metrics HTTP/1.1\r\nHost: test\r\nConnection: close\r\n\r\n",
    );
    assert!(response.starts_with("HTTP/1.1 200 OK\r\n"));
    assert!(response.contains("Content-Type: text/plain; version=0.0.4\r\n"));
    let body = response.split_once("\r\n\r\n").expect("body").1;

    let samples = cliquesquare_obs::promtext::parse(body).expect("valid Prometheus text");
    assert!(!samples.is_empty());
    let has = |name: &str| samples.iter().any(|s| s.name == name);
    assert!(has("csq_http_requests_total"), "body: {body}");
    assert!(has("csq_scheduler_tasks_total"), "body: {body}");
    assert!(has("csq_relation_join_rows_total"), "body: {body}");
    assert!(has("csq_http_request_seconds_bucket"), "body: {body}");
}

#[test]
fn metrics_stay_consistent_under_concurrent_query_load() {
    let server = start_server(ServerConfig::default());
    let addr = server.addr;

    let clients: Vec<_> = (0..3)
        .map(|_| {
            std::thread::spawn(move || {
                for name in ["Q1", "Q2", "Q14"] {
                    let (status, _) = get(addr, &format!("/query?name={name}"));
                    assert_eq!(status, 200);
                }
            })
        })
        .collect();

    // Scrape repeatedly while the queries run: every scrape must parse and
    // the request counter must be monotonically non-decreasing.
    let requests_total = |body: &str| -> f64 {
        cliquesquare_obs::promtext::parse(body)
            .expect("valid Prometheus text")
            .iter()
            .filter(|s| s.name == "csq_http_requests_total")
            .map(|s| s.value)
            .sum()
    };
    let mut last = 0.0;
    for _ in 0..5 {
        let (status, body) = get(addr, "/metrics");
        assert_eq!(status, 200);
        let total = requests_total(&body);
        assert!(
            total >= last,
            "requests_total went backwards: {total} < {last}"
        );
        last = total;
    }
    for client in clients {
        client.join().unwrap();
    }
    let (_, body) = get(addr, "/metrics");
    assert!(requests_total(&body) >= last);
}

#[test]
fn profile_flag_attaches_a_span_tree_without_changing_the_answer() {
    let server = start_server(ServerConfig::default());
    let addr = server.addr;

    let (status, plain) = get(addr, "/query?name=Q2");
    assert_eq!(status, 200);
    assert!(!plain.contains("\"profile\""));

    let (status, profiled) = get(addr, "/query?name=Q2&profile=1");
    assert_eq!(status, 200, "body: {profiled}");
    assert!(profiled.contains("\"profile\": {"), "body: {profiled}");
    for span in [
        "\"name\":\"query\"",
        "\"name\":\"parse\"",
        "\"name\":\"plan\"",
    ] {
        assert!(profiled.contains(span), "missing {span} in: {profiled}");
    }
    assert!(profiled.contains("\"children\""), "body: {profiled}");

    // Identical answers modulo the wall-clock lines and the profile itself
    // (trailing commas shift when the profile key is appended).
    let strip = |text: &str| -> String {
        text.lines()
            .filter(|line| !line.contains("wall_seconds") && !line.contains("\"profile\""))
            .map(|line| line.trim_end_matches(','))
            .collect::<Vec<_>>()
            .join("\n")
    };
    assert_eq!(strip(&plain), strip(&profiled));
}

#[test]
fn a_stalled_request_gets_a_408_when_the_read_timeout_fires() {
    let server = start_server(ServerConfig {
        read_timeout: Some(Duration::from_millis(200)),
        ..ServerConfig::default()
    });

    // Open a connection, send half a request line, then stall.
    let mut stream = TcpStream::connect(server.addr).expect("connect");
    stream.write_all(b"GET /health HT").expect("write");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("read");
    assert!(
        response.starts_with("HTTP/1.1 408 Request Timeout"),
        "response: {response}"
    );
}

#[test]
fn concurrent_http_clients_get_identical_bodies() {
    let server = start_server(ServerConfig::default());
    let addr = server.addr;
    let names = ["Q1", "Q2", "Q4", "Q14"];
    let solo: Vec<String> = names
        .iter()
        .map(|name| {
            let (status, body) = get(addr, &format!("/query?name={name}"));
            assert_eq!(status, 200);
            body
        })
        .collect();
    let handles: Vec<_> = (0..4)
        .map(|_| {
            std::thread::spawn(move || {
                names
                    .iter()
                    .map(|name| get(addr, &format!("/query?name={name}")))
                    .collect::<Vec<_>>()
            })
        })
        .collect();
    for handle in handles {
        for ((status, body), expected) in handle.join().unwrap().into_iter().zip(&solo) {
            assert_eq!(status, 200);
            // wall_seconds varies run to run; everything else must not.
            let strip = |text: &str| -> String {
                text.lines()
                    .filter(|line| !line.contains("wall_seconds"))
                    .collect::<Vec<_>>()
                    .join("\n")
            };
            assert_eq!(strip(&body), strip(expected));
        }
    }
}
