//! A small parser for the Prometheus text exposition format.
//!
//! Not a full scrape client — just enough validation for tests (and the
//! CI smoke step) to assert that `GET /metrics` output stays
//! well-formed: every line is a valid comment, `# HELP`/`# TYPE`
//! directive, or a `name{labels} value [timestamp]` sample with a
//! parsable float value.

/// One parsed sample line.
#[derive(Debug, Clone, PartialEq)]
pub struct Sample {
    /// Metric name (including `_bucket`/`_sum`/`_count` suffixes).
    pub name: String,
    /// Label pairs in the order written.
    pub labels: Vec<(String, String)>,
    /// The sample value.
    pub value: f64,
}

impl Sample {
    /// The value of the label `name`, if present.
    pub fn label(&self, name: &str) -> Option<&str> {
        self.labels
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }
}

/// Parses an exposition document, returning every sample, or a
/// `line N: reason` error for the first malformed line.
pub fn parse(text: &str) -> Result<Vec<Sample>, String> {
    let mut samples = Vec::new();
    for (index, line) in text.lines().enumerate() {
        let number = index + 1;
        let line = line.trim_end();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix('#') {
            parse_comment(rest).map_err(|e| format!("line {number}: {e}"))?;
            continue;
        }
        samples.push(parse_sample(line).map_err(|e| format!("line {number}: {e}"))?);
    }
    Ok(samples)
}

fn parse_comment(rest: &str) -> Result<(), String> {
    let rest = rest.trim_start();
    if let Some(help) = rest.strip_prefix("HELP ") {
        let name = help.split_whitespace().next().unwrap_or("");
        if !valid_name(name) {
            return Err(format!("invalid metric name in HELP: {name:?}"));
        }
    } else if let Some(ty) = rest.strip_prefix("TYPE ") {
        let mut parts = ty.split_whitespace();
        let name = parts.next().unwrap_or("");
        let kind = parts.next().unwrap_or("");
        if !valid_name(name) {
            return Err(format!("invalid metric name in TYPE: {name:?}"));
        }
        if !matches!(
            kind,
            "counter" | "gauge" | "histogram" | "summary" | "untyped"
        ) {
            return Err(format!("unknown metric type {kind:?}"));
        }
    }
    // Other `#` lines are free-form comments.
    Ok(())
}

fn parse_sample(line: &str) -> Result<Sample, String> {
    let name_end = line
        .find(|c: char| c == '{' || c.is_whitespace())
        .ok_or("sample has no value")?;
    let name = &line[..name_end];
    if !valid_name(name) {
        return Err(format!("invalid metric name {name:?}"));
    }
    let mut rest = &line[name_end..];
    let mut labels = Vec::new();
    if let Some(after_brace) = rest.strip_prefix('{') {
        let (parsed, remainder) = parse_labels(after_brace)?;
        labels = parsed;
        rest = remainder;
    }
    let mut parts = rest.split_whitespace();
    let value_text = parts.next().ok_or("sample has no value")?;
    let value = parse_value(value_text)?;
    if let Some(timestamp) = parts.next() {
        timestamp
            .parse::<i64>()
            .map_err(|_| format!("invalid timestamp {timestamp:?}"))?;
    }
    if parts.next().is_some() {
        return Err("trailing tokens after timestamp".to_string());
    }
    Ok(Sample {
        name: name.to_string(),
        labels,
        value,
    })
}

/// Label pairs plus the text remaining after the closing brace.
type ParsedLabels<'a> = (Vec<(String, String)>, &'a str);

/// Parses `k="v",…}` (the opening brace already consumed), returning the
/// pairs and the text after the closing brace.
fn parse_labels(text: &str) -> Result<ParsedLabels<'_>, String> {
    let mut labels = Vec::new();
    let mut chars = text.char_indices().peekable();
    loop {
        // Label name up to '='; a '}' here closes the (possibly empty) set.
        let start = match chars.peek() {
            Some(&(i, '}')) => {
                chars.next();
                return Ok((labels, &text[i + 1..]));
            }
            Some(&(i, _)) => i,
            None => return Err("unterminated label set".to_string()),
        };
        let mut eq = None;
        for (i, c) in chars.by_ref() {
            if c == '=' {
                eq = Some(i);
                break;
            }
        }
        let eq = eq.ok_or("label without '='")?;
        let key = text[start..eq].trim().to_string();
        if !valid_name(&key) {
            return Err(format!("invalid label name {key:?}"));
        }
        match chars.next() {
            Some((_, '"')) => {}
            _ => return Err("label value must be quoted".to_string()),
        }
        let mut value = String::new();
        let mut closed = false;
        while let Some((_, c)) = chars.next() {
            match c {
                '"' => {
                    closed = true;
                    break;
                }
                '\\' => match chars.next() {
                    Some((_, '"')) => value.push('"'),
                    Some((_, '\\')) => value.push('\\'),
                    Some((_, 'n')) => value.push('\n'),
                    other => return Err(format!("bad escape {other:?}")),
                },
                c => value.push(c),
            }
        }
        if !closed {
            return Err("unterminated label value".to_string());
        }
        labels.push((key, value));
        match chars.next() {
            Some((_, ',')) => continue,
            Some((i, '}')) => return Ok((labels, &text[i + 1..])),
            other => return Err(format!("expected ',' or '}}', got {other:?}")),
        }
    }
}

fn parse_value(text: &str) -> Result<f64, String> {
    match text {
        "+Inf" => Ok(f64::INFINITY),
        "-Inf" => Ok(f64::NEG_INFINITY),
        "NaN" => Ok(f64::NAN),
        _ => text
            .parse::<f64>()
            .map_err(|_| format!("invalid sample value {text:?}")),
    }
}

fn valid_name(name: &str) -> bool {
    !name.is_empty()
        && !name.starts_with(|c: char| c.is_ascii_digit())
        && name
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Registry;

    #[test]
    fn parses_rendered_registry() {
        let registry = Registry::new();
        registry
            .counter("req_total", "requests", &[("endpoint", "/query")])
            .add(7);
        registry.gauge("depth", "queue depth", &[]).set(-2);
        let h = registry.histogram("wait_seconds", "wait", &[], &[0.01, 0.1]);
        h.observe(0.05);
        let samples = parse(&registry.render_prometheus()).expect("valid exposition");
        let req = samples.iter().find(|s| s.name == "req_total").unwrap();
        assert_eq!(req.value, 7.0);
        assert_eq!(req.label("endpoint"), Some("/query"));
        let depth = samples.iter().find(|s| s.name == "depth").unwrap();
        assert_eq!(depth.value, -2.0);
        let inf = samples
            .iter()
            .find(|s| s.name == "wait_seconds_bucket" && s.label("le") == Some("+Inf"))
            .unwrap();
        assert_eq!(inf.value, 1.0);
        assert!(samples.iter().any(|s| s.name == "wait_seconds_count"));
    }

    #[test]
    fn rejects_malformed_lines() {
        assert!(parse("9bad_name 1").is_err());
        assert!(parse("name{unclosed=\"v\" 1").is_err());
        assert!(parse("name{k=\"v\"} not_a_number").is_err());
        assert!(parse("# TYPE m frobnicator").is_err());
        assert!(parse("name 1 2 3").is_err());
    }

    #[test]
    fn accepts_labels_and_timestamps() {
        let samples =
            parse("m{a=\"x\",b=\"y\\\"z\"} 1.5 1700000000\n# random comment\nplain 2\n").unwrap();
        assert_eq!(samples.len(), 2);
        assert_eq!(samples[0].label("b"), Some("y\"z"));
        assert_eq!(samples[1].name, "plain");
    }
}
