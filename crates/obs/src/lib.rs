//! Observability substrate for the CliqueSquare engine.
//!
//! The paper's evaluation (Section 7) explains every result through
//! per-stage MapReduce timings and shuffled volumes; this crate gives the
//! reproduction the same vocabulary as a first-class, zero-dependency
//! layer the rest of the workspace can lean on:
//!
//! - [`Registry`] — a process-wide metric registry of lock-free
//!   [`Counter`]s, [`Gauge`]s, and fixed-bucket [`Histogram`]s, named and
//!   labeled, cheap enough for hot paths (one relaxed atomic op per
//!   update; registration hands out `Arc` handles so the hot path never
//!   touches the registry lock). [`Registry::render_prometheus`] emits
//!   the Prometheus text exposition format served by `GET /metrics`.
//! - [`profile`] — lightweight spans that assemble into a per-query
//!   [`QueryProfile`] tree (parse → plan → per-wave execute), serialized
//!   as JSON for the HTTP `profile=1` surface and as Chrome-trace events
//!   (`chrome://tracing` / Perfetto) for offline flame-graph inspection.
//! - [`promtext`] — a small parser for the Prometheus text format, used
//!   by tests to assert `/metrics` stays well-formed.

mod metrics;
pub mod profile;
pub mod promtext;

pub use metrics::{
    global, Counter, Gauge, Histogram, HistogramSnapshot, Registry, LATENCY_SECONDS_BUCKETS,
};
pub use profile::{chrome_trace, QueryProfile, SpanNode, TaskSpan};
