//! Per-query execution profiles.
//!
//! A [`QueryProfile`] is a tree of [`SpanNode`]s — parse → plan →
//! execute, with one child per physical operator wave — each carrying
//! its start offset and wall time, rows in/out, operator attributes
//! (sorts, elisions, runs emitted, shuffle bytes, …), and the per-task
//! walls of the wave that ran it. Spans are recorded only when
//! profiling is requested, so the disabled path costs nothing; the
//! recorded timings are pure observations, which is what keeps answers
//! bit-identical with profiling on or off.
//!
//! Two serializations: [`QueryProfile::to_json`] for the HTTP
//! `profile=1` surface, and [`chrome_trace`] emitting the Chrome trace
//! event format for `chrome://tracing` / Perfetto flame graphs.

/// Wall time of one task of a wave, offset from the profile's start.
#[derive(Debug, Clone, PartialEq)]
pub struct TaskSpan {
    /// Task index within its wave.
    pub index: usize,
    /// Seconds from the profile start to the task starting on a worker.
    pub start_seconds: f64,
    /// Task wall-clock seconds.
    pub wall_seconds: f64,
}

/// One span of the profile tree.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SpanNode {
    /// Span name, e.g. `parse`, `plan`, `MapScan#2`.
    pub name: String,
    /// Seconds from the profile start to this span beginning.
    pub start_seconds: f64,
    /// Span wall-clock seconds.
    pub wall_seconds: f64,
    /// Tuples entering the span (sum over inputs).
    pub rows_in: u64,
    /// Tuples leaving the span.
    pub rows_out: u64,
    /// Operator attributes: sorts, elisions, runs emitted, shuffle bytes…
    pub attrs: Vec<(String, u64)>,
    /// Per-task wall times of the wave that ran this span.
    pub tasks: Vec<TaskSpan>,
    /// Child spans.
    pub children: Vec<SpanNode>,
}

impl SpanNode {
    /// A zeroed span with the given name.
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            ..Self::default()
        }
    }

    /// Adds `value` to the named attribute, creating it if absent.
    pub fn add_attr(&mut self, name: &str, value: u64) {
        if let Some(entry) = self.attrs.iter_mut().find(|(n, _)| n == name) {
            entry.1 += value;
        } else {
            self.attrs.push((name.to_string(), value));
        }
    }

    /// Shifts this span and everything below it `delta` seconds later —
    /// used to rebase an execute subtree onto the query's own epoch.
    pub fn shift(&mut self, delta: f64) {
        self.start_seconds += delta;
        for task in &mut self.tasks {
            task.start_seconds += delta;
        }
        for child in &mut self.children {
            child.shift(delta);
        }
    }

    /// Sum of direct children's wall seconds.
    pub fn children_wall_seconds(&self) -> f64 {
        self.children.iter().map(|c| c.wall_seconds).sum()
    }

    fn render_json(&self, out: &mut String) {
        out.push_str("{\"name\":\"");
        out.push_str(&json_escape(&self.name));
        out.push_str(&format!(
            "\",\"start_s\":{},\"wall_s\":{},\"rows_in\":{},\"rows_out\":{}",
            self.start_seconds, self.wall_seconds, self.rows_in, self.rows_out
        ));
        out.push_str(",\"attrs\":{");
        for (index, (name, value)) in self.attrs.iter().enumerate() {
            if index > 0 {
                out.push(',');
            }
            out.push_str(&format!("\"{}\":{value}", json_escape(name)));
        }
        out.push_str("},\"tasks\":[");
        for (index, task) in self.tasks.iter().enumerate() {
            if index > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"task\":{},\"start_s\":{},\"wall_s\":{}}}",
                task.index, task.start_seconds, task.wall_seconds
            ));
        }
        out.push_str("],\"children\":[");
        for (index, child) in self.children.iter().enumerate() {
            if index > 0 {
                out.push(',');
            }
            child.render_json(out);
        }
        out.push_str("]}");
    }
}

/// A complete per-query profile: the span tree plus query-level facts.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryProfile {
    /// The query's name or text.
    pub query: String,
    /// Worker threads the execution ran with.
    pub threads: usize,
    /// End-to-end wall seconds (parse through decode).
    pub total_wall_seconds: f64,
    /// The span tree; children are typically parse, plan, execute.
    pub root: SpanNode,
}

impl QueryProfile {
    /// The profile as a self-contained JSON object.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\"query\":\"");
        out.push_str(&json_escape(&self.query));
        out.push_str(&format!(
            "\",\"threads\":{},\"total_wall_s\":{},\"root\":",
            self.threads, self.total_wall_seconds
        ));
        self.root.render_json(&mut out);
        out.push('}');
        out
    }
}

/// Renders profiles as a Chrome trace (open in `chrome://tracing` or
/// [Perfetto](https://ui.perfetto.dev)). Each query becomes a process;
/// spans land on thread 0 and each wave task on its own thread row, so
/// the flame graph shows driver time above per-task parallelism.
pub fn chrome_trace(profiles: &[QueryProfile]) -> String {
    let mut out = String::from("{\"traceEvents\":[");
    let mut first = true;
    for (index, profile) in profiles.iter().enumerate() {
        let pid = index + 1;
        push_event(
            &mut out,
            &mut first,
            &format!(
                "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{pid},\"tid\":0,\
                 \"args\":{{\"name\":\"{}\"}}}}",
                json_escape(&profile.query)
            ),
        );
        chrome_node(&mut out, &mut first, &profile.root, pid);
    }
    out.push_str("]}");
    out
}

fn chrome_node(out: &mut String, first: &mut bool, node: &SpanNode, pid: usize) {
    push_event(
        out,
        first,
        &format!(
            "{{\"name\":\"{}\",\"cat\":\"span\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\
             \"pid\":{pid},\"tid\":0,\"args\":{{\"rows_in\":{},\"rows_out\":{}}}}}",
            json_escape(&node.name),
            micros(node.start_seconds),
            micros(node.wall_seconds),
            node.rows_in,
            node.rows_out
        ),
    );
    for task in &node.tasks {
        push_event(
            out,
            first,
            &format!(
                "{{\"name\":\"{}[{}]\",\"cat\":\"task\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\
                 \"pid\":{pid},\"tid\":{}}}",
                json_escape(&node.name),
                task.index,
                micros(task.start_seconds),
                micros(task.wall_seconds),
                task.index + 1
            ),
        );
    }
    for child in &node.children {
        chrome_node(out, first, child, pid);
    }
}

fn push_event(out: &mut String, first: &mut bool, event: &str) {
    if !*first {
        out.push(',');
    }
    *first = false;
    out.push_str(event);
}

fn micros(seconds: f64) -> u64 {
    (seconds * 1e6).round().max(0.0) as u64
}

fn json_escape(text: &str) -> String {
    let mut out = String::with_capacity(text.len());
    for c in text.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> QueryProfile {
        let mut execute = SpanNode::new("execute");
        execute.start_seconds = 0.002;
        execute.wall_seconds = 0.01;
        let mut scan = SpanNode::new("MapScan#0");
        scan.start_seconds = 0.002;
        scan.wall_seconds = 0.004;
        scan.rows_in = 100;
        scan.rows_out = 40;
        scan.add_attr("sorts_performed", 2);
        scan.add_attr("sorts_performed", 1);
        scan.tasks.push(TaskSpan {
            index: 0,
            start_seconds: 0.0021,
            wall_seconds: 0.003,
        });
        execute.children.push(scan);
        let mut root = SpanNode::new("query");
        root.wall_seconds = 0.012;
        root.children.push(execute);
        QueryProfile {
            query: "Q1".into(),
            threads: 2,
            total_wall_seconds: 0.012,
            root,
        }
    }

    #[test]
    fn json_contains_tree() {
        let json = sample().to_json();
        assert!(json.starts_with("{\"query\":\"Q1\""));
        assert!(json.contains("\"threads\":2"));
        assert!(json.contains("\"name\":\"MapScan#0\""));
        assert!(json.contains("\"sorts_performed\":3"));
        assert!(json.contains("\"tasks\":[{\"task\":0"));
        assert!(json.ends_with("}"));
    }

    #[test]
    fn shift_rebases_everything() {
        let mut profile = sample();
        profile.root.shift(1.0);
        assert!((profile.root.start_seconds - 1.0).abs() < 1e-12);
        let scan = &profile.root.children[0].children[0];
        assert!((scan.start_seconds - 1.002).abs() < 1e-12);
        assert!((scan.tasks[0].start_seconds - 1.0021).abs() < 1e-12);
    }

    #[test]
    fn chrome_trace_shape() {
        let trace = chrome_trace(&[sample()]);
        assert!(trace.starts_with("{\"traceEvents\":["));
        assert!(trace.contains("\"process_name\""));
        assert!(trace.contains("\"name\":\"MapScan#0\""));
        assert!(trace.contains("\"name\":\"MapScan#0[0]\""));
        assert!(trace.contains("\"dur\":4000"));
        assert!(trace.ends_with("]}"));
    }

    #[test]
    fn children_wall_sums() {
        let profile = sample();
        assert!((profile.root.children_wall_seconds() - 0.01).abs() < 1e-12);
    }
}
