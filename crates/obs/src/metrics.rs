//! The lock-free metric registry.
//!
//! Handles ([`Counter`], [`Gauge`], [`Histogram`]) are plain atomics
//! behind `Arc`s: registration takes the registry lock once, after which
//! every update is a single relaxed atomic operation — cheap enough to
//! sit on operator-granularity hot paths. Metrics are identified by a
//! Prometheus-style name plus an ordered label set; registering the same
//! (name, labels) twice returns the same handle, so independent layers
//! (the scheduler and a bench binary, say) can share a series without
//! plumbing handles through APIs.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// A monotonically increasing counter.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// The current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A gauge: a value that can go up and down (or track a high-water mark).
#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicI64,
}

impl Gauge {
    /// Sets the gauge.
    pub fn set(&self, v: i64) {
        self.value.store(v, Ordering::Relaxed);
    }

    /// Adds `n` (may be negative via [`Gauge::sub`]).
    pub fn add(&self, n: i64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Subtracts `n`.
    pub fn sub(&self, n: i64) {
        self.value.fetch_sub(n, Ordering::Relaxed);
    }

    /// Raises the gauge to `v` if `v` is larger (high-water tracking).
    pub fn record_max(&self, v: i64) {
        self.value.fetch_max(v, Ordering::Relaxed);
    }

    /// The current value.
    pub fn get(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// Default bucket bounds (seconds) for latency histograms: 100 µs … 10 s.
pub const LATENCY_SECONDS_BUCKETS: &[f64] = &[
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5,
    5.0, 10.0,
];

/// Micro-units per observed unit: histogram sums accumulate in fixed
/// point so the hot path stays a single integer `fetch_add`.
const SUM_SCALE: f64 = 1e6;

/// A fixed-bucket histogram. Buckets hold *non*-cumulative counts
/// internally; rendering and snapshots cumulate them.
#[derive(Debug)]
pub struct Histogram {
    /// Strictly increasing upper bounds; an implicit `+Inf` bucket follows.
    bounds: Vec<f64>,
    /// `bounds.len() + 1` per-bucket counts.
    buckets: Vec<AtomicU64>,
    /// Sum of observed values in micro-units.
    sum_micros: AtomicU64,
}

impl Histogram {
    fn new(bounds: &[f64]) -> Self {
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly increasing"
        );
        Self {
            bounds: bounds.to_vec(),
            buckets: (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect(),
            sum_micros: AtomicU64::new(0),
        }
    }

    /// Records one observation.
    pub fn observe(&self, value: f64) {
        let index = self
            .bounds
            .iter()
            .position(|&bound| value <= bound)
            .unwrap_or(self.bounds.len());
        self.buckets[index].fetch_add(1, Ordering::Relaxed);
        let micros = (value.max(0.0) * SUM_SCALE).round() as u64;
        self.sum_micros.fetch_add(micros, Ordering::Relaxed);
    }

    /// A point-in-time copy of the histogram's state.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            bounds: self.bounds.clone(),
            counts: self
                .buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
            sum: self.sum_micros.load(Ordering::Relaxed) as f64 / SUM_SCALE,
        }
    }
}

/// A copyable histogram state, supporting interval deltas and quantile
/// estimates (used by `report_serving` for queue-wait percentiles).
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramSnapshot {
    /// Finite bucket upper bounds (the `+Inf` bucket is implicit).
    pub bounds: Vec<f64>,
    /// Per-bucket (non-cumulative) counts, one per bound plus `+Inf`.
    pub counts: Vec<u64>,
    /// Sum of observed values.
    pub sum: f64,
}

impl HistogramSnapshot {
    /// Total observations.
    pub fn count(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Observations recorded since `earlier` (same bucket layout).
    pub fn since(&self, earlier: &HistogramSnapshot) -> HistogramSnapshot {
        assert_eq!(self.bounds, earlier.bounds, "histogram layouts differ");
        HistogramSnapshot {
            bounds: self.bounds.clone(),
            counts: self
                .counts
                .iter()
                .zip(&earlier.counts)
                .map(|(now, then)| now.saturating_sub(*then))
                .collect(),
            sum: (self.sum - earlier.sum).max(0.0),
        }
    }

    /// Upper-bound estimate of the `q`-quantile (0 ≤ q ≤ 1): the smallest
    /// bucket bound whose cumulative count covers `q` of the observations.
    /// Observations above every finite bound report the largest finite
    /// bound. `None` when the histogram is empty.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        let total = self.count();
        if total == 0 {
            return None;
        }
        let rank = ((q.clamp(0.0, 1.0) * total as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (index, count) in self.counts.iter().enumerate() {
            seen += count;
            if seen >= rank {
                let bound = index.min(self.bounds.len().saturating_sub(1));
                return self.bounds.get(bound).copied();
            }
        }
        self.bounds.last().copied()
    }
}

/// One registered series: a kind-specific shared handle.
#[derive(Debug, Clone)]
enum Series {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

/// All series sharing one metric name.
#[derive(Debug)]
struct Family {
    help: String,
    kind: &'static str,
    /// Keyed by the rendered label pairs (`k="v",k2="v2"`, sorted).
    series: BTreeMap<String, Series>,
}

/// A named, labeled collection of metrics with Prometheus rendering.
#[derive(Debug, Default)]
pub struct Registry {
    families: Mutex<BTreeMap<String, Family>>,
}

/// The process-wide registry every layer of the stack reports into.
pub fn global() -> &'static Registry {
    static GLOBAL: OnceLock<Registry> = OnceLock::new();
    GLOBAL.get_or_init(Registry::default)
}

impl Registry {
    /// A fresh, empty registry (tests; production code uses [`global`]).
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers (or retrieves) a counter. Idempotent: the same
    /// (name, labels) always returns the same handle.
    pub fn counter(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Arc<Counter> {
        match self.series(name, help, "counter", labels, || {
            Series::Counter(Arc::new(Counter::default()))
        }) {
            Series::Counter(c) => c,
            _ => unreachable!(),
        }
    }

    /// Registers (or retrieves) a gauge.
    pub fn gauge(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Arc<Gauge> {
        match self.series(name, help, "gauge", labels, || {
            Series::Gauge(Arc::new(Gauge::default()))
        }) {
            Series::Gauge(g) => g,
            _ => unreachable!(),
        }
    }

    /// Registers (or retrieves) a histogram with the given bucket bounds.
    /// The bounds of the first registration win.
    pub fn histogram(
        &self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        bounds: &[f64],
    ) -> Arc<Histogram> {
        match self.series(name, help, "histogram", labels, || {
            Series::Histogram(Arc::new(Histogram::new(bounds)))
        }) {
            Series::Histogram(h) => h,
            _ => unreachable!(),
        }
    }

    fn series(
        &self,
        name: &str,
        help: &str,
        kind: &'static str,
        labels: &[(&str, &str)],
        create: impl FnOnce() -> Series,
    ) -> Series {
        assert!(valid_name(name), "invalid metric name {name:?}");
        assert!(
            labels.iter().all(|(k, _)| valid_name(k)),
            "invalid label name in {labels:?}"
        );
        let key = label_key(labels);
        let mut families = self.families.lock().expect("metric registry poisoned");
        let family = families.entry(name.to_string()).or_insert_with(|| Family {
            help: help.to_string(),
            kind,
            series: BTreeMap::new(),
        });
        assert_eq!(
            family.kind, kind,
            "metric {name} registered as {} and {kind}",
            family.kind
        );
        family.series.entry(key).or_insert_with(create).clone()
    }

    /// Renders every metric in the Prometheus text exposition format.
    pub fn render_prometheus(&self) -> String {
        let families = self.families.lock().expect("metric registry poisoned");
        let mut out = String::new();
        for (name, family) in families.iter() {
            out.push_str(&format!("# HELP {name} {}\n", family.help));
            out.push_str(&format!("# TYPE {name} {}\n", family.kind));
            for (labels, series) in &family.series {
                match series {
                    Series::Counter(c) => {
                        out.push_str(&sample_line(name, labels, &c.get().to_string()));
                    }
                    Series::Gauge(g) => {
                        out.push_str(&sample_line(name, labels, &g.get().to_string()));
                    }
                    Series::Histogram(h) => {
                        let snapshot = h.snapshot();
                        let mut cumulative = 0u64;
                        for (index, bound) in snapshot.bounds.iter().enumerate() {
                            cumulative += snapshot.counts[index];
                            let le = format!("le=\"{bound}\"");
                            let with_le = join_labels(labels, &le);
                            out.push_str(&sample_line(
                                &format!("{name}_bucket"),
                                &with_le,
                                &cumulative.to_string(),
                            ));
                        }
                        cumulative += snapshot.counts.last().copied().unwrap_or(0);
                        let inf = join_labels(labels, "le=\"+Inf\"");
                        out.push_str(&sample_line(
                            &format!("{name}_bucket"),
                            &inf,
                            &cumulative.to_string(),
                        ));
                        out.push_str(&sample_line(
                            &format!("{name}_sum"),
                            labels,
                            &format!("{}", snapshot.sum),
                        ));
                        out.push_str(&sample_line(
                            &format!("{name}_count"),
                            labels,
                            &cumulative.to_string(),
                        ));
                    }
                }
            }
        }
        out
    }
}

/// `name{labels} value\n`, omitting empty label braces.
fn sample_line(name: &str, labels: &str, value: &str) -> String {
    if labels.is_empty() {
        format!("{name} {value}\n")
    } else {
        format!("{name}{{{labels}}} {value}\n")
    }
}

fn join_labels(labels: &str, extra: &str) -> String {
    if labels.is_empty() {
        extra.to_string()
    } else {
        format!("{labels},{extra}")
    }
}

/// Sorted `k="v"` pairs — the canonical series key and rendered form.
fn label_key(labels: &[(&str, &str)]) -> String {
    let mut pairs: Vec<_> = labels.iter().collect();
    pairs.sort();
    pairs
        .iter()
        .map(|(k, v)| format!("{k}=\"{}\"", escape_label(v)))
        .collect::<Vec<_>>()
        .join(",")
}

fn escape_label(value: &str) -> String {
    value
        .replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

fn valid_name(name: &str) -> bool {
    !name.is_empty()
        && !name.starts_with(|c: char| c.is_ascii_digit())
        && name
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_basics() {
        let registry = Registry::new();
        let hits = registry.counter("hits_total", "hits", &[]);
        hits.inc();
        hits.add(4);
        assert_eq!(hits.get(), 5);

        let depth = registry.gauge("depth", "queue depth", &[]);
        depth.add(3);
        depth.sub(1);
        assert_eq!(depth.get(), 2);
        depth.record_max(10);
        depth.record_max(7);
        assert_eq!(depth.get(), 10);
    }

    #[test]
    fn registration_is_idempotent() {
        let registry = Registry::new();
        let a = registry.counter("requests_total", "req", &[("endpoint", "/query")]);
        let b = registry.counter("requests_total", "req", &[("endpoint", "/query")]);
        assert!(Arc::ptr_eq(&a, &b));
        let other = registry.counter("requests_total", "req", &[("endpoint", "/sparql")]);
        assert!(!Arc::ptr_eq(&a, &other));
    }

    #[test]
    #[should_panic(expected = "registered as counter and gauge")]
    fn kind_mismatch_panics() {
        let registry = Registry::new();
        registry.counter("metric", "m", &[]);
        registry.gauge("metric", "m", &[]);
    }

    #[test]
    fn histogram_buckets_and_quantiles() {
        let registry = Registry::new();
        let h = registry.histogram("lat_seconds", "latency", &[], &[0.001, 0.01, 0.1]);
        h.observe(0.0005); // bucket 0
        h.observe(0.005); // bucket 1
        h.observe(0.005); // bucket 1
        h.observe(0.05); // bucket 2
        h.observe(5.0); // +Inf
        let snap = h.snapshot();
        assert_eq!(snap.counts, vec![1, 2, 1, 1]);
        assert_eq!(snap.count(), 5);
        assert!((snap.sum - 5.0605).abs() < 1e-6);
        assert_eq!(snap.quantile(0.0), Some(0.001));
        assert_eq!(snap.quantile(0.5), Some(0.01));
        // The +Inf observation reports the largest finite bound.
        assert_eq!(snap.quantile(1.0), Some(0.1));
    }

    #[test]
    fn histogram_delta() {
        let registry = Registry::new();
        let h = registry.histogram("lat", "latency", &[], &[1.0, 2.0]);
        h.observe(0.5);
        let before = h.snapshot();
        h.observe(1.5);
        h.observe(10.0);
        let delta = h.snapshot().since(&before);
        assert_eq!(delta.counts, vec![0, 1, 1]);
        assert_eq!(delta.count(), 2);
        assert!((delta.sum - 11.5).abs() < 1e-6);
        assert_eq!(delta.quantile(0.5), Some(2.0));
    }

    #[test]
    fn empty_histogram_has_no_quantile() {
        let registry = Registry::new();
        let h = registry.histogram("lat", "latency", &[], &[1.0]);
        assert_eq!(h.snapshot().quantile(0.5), None);
    }

    #[test]
    fn prometheus_rendering() {
        let registry = Registry::new();
        registry
            .counter("requests_total", "requests served", &[("endpoint", "/q")])
            .add(3);
        registry.gauge("queue_depth", "queued tasks", &[]).set(2);
        let h = registry.histogram("wait_seconds", "queue wait", &[], &[0.01, 0.1]);
        h.observe(0.005);
        h.observe(0.5);
        let text = registry.render_prometheus();
        assert!(text.contains("# TYPE requests_total counter\n"));
        assert!(text.contains("requests_total{endpoint=\"/q\"} 3\n"));
        assert!(text.contains("# TYPE queue_depth gauge\n"));
        assert!(text.contains("queue_depth 2\n"));
        assert!(text.contains("wait_seconds_bucket{le=\"0.01\"} 1\n"));
        assert!(text.contains("wait_seconds_bucket{le=\"0.1\"} 1\n"));
        assert!(text.contains("wait_seconds_bucket{le=\"+Inf\"} 2\n"));
        assert!(text.contains("wait_seconds_count 2\n"));
    }

    #[test]
    fn label_values_escaped() {
        let registry = Registry::new();
        registry
            .counter("c_total", "c", &[("q", "say \"hi\"\\now")])
            .inc();
        let text = registry.render_prometheus();
        assert!(text.contains("c_total{q=\"say \\\"hi\\\"\\\\now\"} 1\n"));
    }
}
