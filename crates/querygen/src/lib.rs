//! Benchmark workloads: the LUBM queries of the paper's Appendix A, an
//! SP²Bench-flavoured chain/skew workload, and the synthetic query
//! generator used in its Section 6.2 optimizer study.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod lubm_queries;
pub mod sp2b_queries;
pub mod synthetic;

pub use lubm_queries::{lubm_queries, lubm_query, non_selective_queries, selective_queries};
pub use sp2b_queries::{sp2b_queries, sp2b_query};
pub use synthetic::{SyntheticShape, SyntheticWorkload, WorkloadConfig};
