//! The 14 LUBM-based evaluation queries of Appendix A.
//!
//! Queries marked *(original)* in the paper come from the LUBM benchmark
//! (with generic classes specialized so they have non-empty answers without
//! reasoning); the others were added by the authors to cover a range of
//! sizes and selectivities. Constants are kept exactly as in the paper
//! (`<http://www.University0.edu>`, `"University3"`), which our LUBM-like
//! generator produces.

use cliquesquare_sparql::parser::parse_query;
use cliquesquare_sparql::BgpQuery;

fn q(name: &str, text: &str) -> BgpQuery {
    let mut query = parse_query(text).unwrap_or_else(|e| panic!("query {name} is invalid: {e}"));
    query.set_name(name);
    query
}

/// Q1: professors and the members of the department they work for (2 patterns).
pub fn q1() -> BgpQuery {
    q(
        "Q1",
        "SELECT ?P ?S WHERE { ?P ub:worksFor ?D . ?S ub:memberOf ?D . }",
    )
}

/// Q2 *(original)*: assistant professors with a doctoral degree from University0.
pub fn q2() -> BgpQuery {
    q(
        "Q2",
        "SELECT ?X WHERE { ?X rdf:type ub:AssistantProfessor . \
         ?X ub:doctoralDegreeFrom <http://www.University0.edu> }",
    )
}

/// Q3: Q1 restricted to departments of University0 (3 patterns).
pub fn q3() -> BgpQuery {
    q(
        "Q3",
        "SELECT ?P ?S WHERE { ?P ub:worksFor ?D . ?S ub:memberOf ?D . \
         ?D ub:subOrganizationOf <http://www.University0.edu> }",
    )
}

/// Q4 *(original)*: lecturers of departments of University0 (4 patterns).
pub fn q4() -> BgpQuery {
    q(
        "Q4",
        "SELECT ?X ?Y WHERE { ?X rdf:type ub:Lecturer . ?Y rdf:type ub:Department . \
         ?X ub:worksFor ?Y . ?Y ub:subOrganizationOf <http://www.University0.edu> }",
    )
}

/// Q5: undergraduate students taking a course taught by a full professor.
pub fn q5() -> BgpQuery {
    q(
        "Q5",
        "SELECT ?X ?Y ?Z WHERE { ?X rdf:type ub:UndergraduateStudent . \
         ?Y rdf:type ub:FullProfessor . ?Z rdf:type ub:Course . \
         ?X ub:takesCourse ?Z . ?Y ub:teacherOf ?Z }",
    )
}

/// Q6: undergraduate students whose advisor is a full professor teaching a course.
pub fn q6() -> BgpQuery {
    q(
        "Q6",
        "SELECT ?X ?Y ?Z WHERE { ?X rdf:type ub:UndergraduateStudent . \
         ?Y rdf:type ub:FullProfessor . ?Z rdf:type ub:Course . \
         ?X ub:advisor ?Y . ?Y ub:teacherOf ?Z }",
    )
}

/// Q7: graduate students, their department and its university.
pub fn q7() -> BgpQuery {
    q(
        "Q7",
        "SELECT ?X ?Y ?Z WHERE { ?X a ub:GraduateStudent . ?Z ub:subOrganizationOf ?Y . \
         ?X ub:memberOf ?Z . ?Z a ub:Department . ?Y a ub:University . }",
    )
}

/// Q8: graduate students with an undergraduate degree from a university that
/// hosts a department.
pub fn q8() -> BgpQuery {
    q(
        "Q8",
        "SELECT ?X ?Y ?Z WHERE { ?X a ub:GraduateStudent . ?X ub:undergraduateDegreeFrom ?Y . \
         ?Z ub:subOrganizationOf ?Y . ?Z a ub:Department . ?Y a ub:University . }",
    )
}

/// Q9 *(original)*: Q8 with the student additionally a member of the department.
pub fn q9() -> BgpQuery {
    q(
        "Q9",
        "SELECT ?X ?Y ?Z WHERE { ?X a ub:GraduateStudent . ?X ub:undergraduateDegreeFrom ?Y . \
         ?Z ub:subOrganizationOf ?Y . ?X ub:memberOf ?Z . ?Z a ub:Department . ?Y a ub:University . }",
    )
}

/// Q10 *(original)*: students advised by the professor teaching a course they take.
pub fn q10() -> BgpQuery {
    q(
        "Q10",
        "SELECT ?X ?Y ?Z WHERE { ?X rdf:type ub:UndergraduateStudent . \
         ?Y rdf:type ub:FullProfessor . ?Z rdf:type ub:Course . \
         ?X ub:advisor ?Y . ?X ub:takesCourse ?Z . ?Y ub:teacherOf ?Z }",
    )
}

/// Q11: students of University3 with their advisor's e-mail (8 patterns).
pub fn q11() -> BgpQuery {
    q(
        "Q11",
        "SELECT ?X ?Y ?E WHERE { ?X rdf:type ub:UndergraduateStudent . ?X ub:takesCourse ?Y . \
         ?X ub:memberOf ?Z . ?X ub:advisor ?W . ?W rdf:type ub:FullProfessor . \
         ?W ub:emailAddress ?E . ?Z ub:subOrganizationOf ?U . ?U ub:name \"University3\" }",
    )
}

/// Q12: full professors teaching graduate courses and advising graduate
/// students (9 patterns).
pub fn q12() -> BgpQuery {
    q(
        "Q12",
        "SELECT ?X ?Y ?Z WHERE { ?X rdf:type ub:FullProfessor . ?X ub:teacherOf ?Y . \
         ?Y rdf:type ub:GraduateCourse . ?X ub:worksFor ?Z . ?W ub:advisor ?X . \
         ?W rdf:type ub:GraduateStudent . ?W ub:emailAddress ?E . ?Z rdf:type ub:Department . \
         ?Z ub:subOrganizationOf ?U }",
    )
}

/// Q13: Q12 restricted to departments of University0 (9 patterns).
pub fn q13() -> BgpQuery {
    q(
        "Q13",
        "SELECT ?X ?Y ?Z WHERE { ?X rdf:type ub:FullProfessor . ?X ub:teacherOf ?Y . \
         ?Y rdf:type ub:GraduateCourse . ?X ub:worksFor ?Z . ?W ub:advisor ?X . \
         ?W rdf:type ub:GraduateStudent . ?W ub:emailAddress ?E . ?Z rdf:type ub:Department . \
         ?Z ub:subOrganizationOf <http://www.University0.edu> }",
    )
}

/// Q14: Q12 restricted to University3 by name (10 patterns).
pub fn q14() -> BgpQuery {
    q(
        "Q14",
        "SELECT ?X ?Y ?Z WHERE { ?X rdf:type ub:FullProfessor . ?X ub:teacherOf ?Y . \
         ?Y rdf:type ub:GraduateCourse . ?X ub:worksFor ?Z . ?W ub:advisor ?X . \
         ?W rdf:type ub:GraduateStudent . ?W ub:emailAddress ?E . ?Z rdf:type ub:Department . \
         ?Z ub:subOrganizationOf ?U . ?U ub:name \"University3\" }",
    )
}

/// All 14 queries in order.
pub fn lubm_queries() -> Vec<BgpQuery> {
    vec![
        q1(),
        q2(),
        q3(),
        q4(),
        q5(),
        q6(),
        q7(),
        q8(),
        q9(),
        q10(),
        q11(),
        q12(),
        q13(),
        q14(),
    ]
}

/// Looks a query up by name (`"Q1"` … `"Q14"`).
pub fn lubm_query(name: &str) -> Option<BgpQuery> {
    lubm_queries().into_iter().find(|q| q.name() == name)
}

/// The queries the paper classifies as *selective* in its Figure 21 system
/// comparison (< 0.5 M answers on LUBM10k).
pub fn selective_queries() -> Vec<BgpQuery> {
    ["Q2", "Q3", "Q4", "Q9", "Q10", "Q11", "Q13", "Q14"]
        .iter()
        .filter_map(|name| lubm_query(name))
        .collect()
}

/// The queries the paper classifies as *non-selective* (> 7.5 M answers on
/// LUBM10k).
pub fn non_selective_queries() -> Vec<BgpQuery> {
    ["Q1", "Q5", "Q6", "Q7", "Q8", "Q12"]
        .iter()
        .filter_map(|name| lubm_query(name))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use cliquesquare_sparql::analysis;

    /// The `#tps` and `#jv` columns of Figure 22.
    const FIGURE_22: [(&str, usize, usize); 14] = [
        ("Q1", 2, 1),
        ("Q2", 2, 1),
        ("Q3", 3, 1),
        ("Q4", 4, 2),
        ("Q5", 5, 3),
        ("Q6", 5, 3),
        ("Q7", 5, 3),
        ("Q8", 5, 3),
        ("Q9", 6, 3),
        ("Q10", 6, 3),
        ("Q11", 8, 4),
        ("Q12", 9, 4),
        ("Q13", 9, 4),
        ("Q14", 10, 5),
    ];

    #[test]
    fn query_set_matches_figure_22_characteristics() {
        let queries = lubm_queries();
        assert_eq!(queries.len(), 14);
        for (name, tps, jv) in FIGURE_22 {
            let query = lubm_query(name).unwrap_or_else(|| panic!("{name} missing"));
            let stats = analysis::stats(&query);
            assert_eq!(stats.triple_patterns, tps, "{name}: wrong #tps");
            assert_eq!(stats.join_variables, jv, "{name}: wrong #jv");
        }
    }

    #[test]
    fn all_queries_are_connected() {
        for query in lubm_queries() {
            assert!(
                query.is_connected(),
                "{} contains a cartesian product",
                query.name()
            );
        }
    }

    #[test]
    fn selectivity_classes_partition_the_workload() {
        let selective = selective_queries();
        let non_selective = non_selective_queries();
        assert_eq!(selective.len() + non_selective.len(), 14);
        for q in &selective {
            assert!(!non_selective.iter().any(|o| o.name() == q.name()));
        }
    }

    #[test]
    fn lookup_by_name() {
        assert!(lubm_query("Q7").is_some());
        assert!(lubm_query("Q15").is_none());
        assert_eq!(lubm_query("Q14").unwrap().len(), 10);
    }

    #[test]
    fn distinguished_variables_match_the_paper() {
        assert_eq!(q1().distinguished().len(), 2);
        assert_eq!(q2().distinguished().len(), 1);
        assert_eq!(q11().distinguished().len(), 3);
        assert_eq!(q14().distinguished().len(), 3);
    }
}
