//! Synthetic BGP query generator (the Section 6.2 optimizer workload).
//!
//! The paper uses the query generator of [10] to build 120 synthetic queries
//! whose shape is *chain*, *star*, or *random* with *thin* and *dense*
//! variants (dense queries have many variables shared across triple
//! patterns, thin ones are close to chains). Queries have between 1 and 10
//! triple patterns. This module reproduces that workload deterministically
//! from a seed.

use cliquesquare_sparql::{BgpQuery, PatternTerm, TriplePattern, Variable};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::fmt;

/// The shape of a generated query.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SyntheticShape {
    /// `?v1 p1 ?v2 . ?v2 p2 ?v3 . …`
    Chain,
    /// `?x p1 ?v1 . ?x p2 ?v2 . …`
    Star,
    /// Randomly attached patterns sharing few variables (close to a chain).
    RandomThin,
    /// Randomly attached patterns drawing from a small variable pool, so
    /// many variables are shared by many patterns.
    RandomDense,
}

impl SyntheticShape {
    /// The four shapes in the order the paper's tables list them
    /// (chain, dense, thin, star).
    pub const ALL: [SyntheticShape; 4] = [
        SyntheticShape::Chain,
        SyntheticShape::RandomDense,
        SyntheticShape::RandomThin,
        SyntheticShape::Star,
    ];

    /// A short lowercase label.
    pub fn label(self) -> &'static str {
        match self {
            SyntheticShape::Chain => "chain",
            SyntheticShape::Star => "star",
            SyntheticShape::RandomThin => "thin",
            SyntheticShape::RandomDense => "dense",
        }
    }
}

impl fmt::Display for SyntheticShape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Configuration of a synthetic workload.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct WorkloadConfig {
    /// Number of queries generated per shape.
    pub queries_per_shape: usize,
    /// Smallest number of triple patterns.
    pub min_patterns: usize,
    /// Largest number of triple patterns.
    pub max_patterns: usize,
    /// Random seed.
    pub seed: u64,
}

impl Default for WorkloadConfig {
    fn default() -> Self {
        // 4 shapes × 30 queries = the paper's 120-query workload,
        // 1–10 triple patterns per query.
        Self {
            queries_per_shape: 30,
            min_patterns: 1,
            max_patterns: 10,
            seed: 0xC11_95A5,
        }
    }
}

impl WorkloadConfig {
    /// A small workload for unit tests.
    pub fn small() -> Self {
        Self {
            queries_per_shape: 5,
            min_patterns: 2,
            max_patterns: 6,
            seed: 42,
        }
    }
}

/// Deterministic synthetic workload generator.
#[derive(Debug, Clone, Copy, Default)]
pub struct SyntheticWorkload;

impl SyntheticWorkload {
    /// Generates one query of the given shape with `patterns` triple
    /// patterns, using `rng` for the random attachment choices.
    pub fn query(shape: SyntheticShape, patterns: usize, rng: &mut StdRng) -> BgpQuery {
        let patterns = patterns.max(1);
        let triples = match shape {
            SyntheticShape::Chain => chain(patterns),
            SyntheticShape::Star => star(patterns),
            SyntheticShape::RandomThin => random(patterns, patterns + 1, rng),
            SyntheticShape::RandomDense => random(patterns, (patterns / 2).max(2), rng),
        };
        let mut distinguished: Vec<Variable> = Vec::new();
        for pattern in &triples {
            for v in pattern.variables() {
                if distinguished.len() < 2 && !distinguished.contains(&v) {
                    distinguished.push(v);
                }
            }
        }
        BgpQuery::named(
            format!("{}-{patterns}", shape.label()),
            distinguished,
            triples,
        )
    }

    /// Generates the full workload described by `config`: for every shape,
    /// `queries_per_shape` queries with sizes cycling through the configured
    /// range.
    pub fn generate(config: WorkloadConfig) -> Vec<BgpQuery> {
        let mut rng = StdRng::seed_from_u64(config.seed);
        let span = config.max_patterns.max(config.min_patterns) - config.min_patterns + 1;
        let mut queries = Vec::new();
        for shape in SyntheticShape::ALL {
            for index in 0..config.queries_per_shape {
                let size = config.min_patterns + (index % span);
                let mut query = Self::query(shape, size, &mut rng);
                query.set_name(format!("{}-{size}-{index}", shape.label()));
                queries.push(query);
            }
        }
        queries
    }

    /// Generates the workload of one shape only.
    pub fn generate_shape(shape: SyntheticShape, config: WorkloadConfig) -> Vec<BgpQuery> {
        Self::generate(config)
            .into_iter()
            .filter(|q| q.name().starts_with(shape.label()))
            .collect()
    }

    /// A high-fan-out star that distinguishes the **leaves**, not the hub:
    /// `SELECT ?v1 … ?vn WHERE { ?v0 p1 ?v1 . ?v0 p2 ?v2 . … }`. The
    /// projection drops the join key, so the result is a per-key cross
    /// product of the leaf bindings — the adversarial case for join
    /// intermediates (output quadratic-and-worse in the input), and the
    /// query shape run-length factorized joins keep sublinear.
    pub fn fanout_star(patterns: usize) -> BgpQuery {
        let patterns = patterns.max(1);
        let triples = star(patterns);
        let leaves: Vec<Variable> = (1..=patterns)
            .map(|i| Variable::new(format!("v{i}")))
            .collect();
        BgpQuery::named(format!("fanout-star-{patterns}"), leaves, triples)
    }

    /// A deep chain that distinguishes only its two **endpoints**:
    /// `SELECT ?v0 ?vn WHERE { ?v0 p1 ?v1 . ?v1 p2 ?v2 . … }`. Every
    /// interior variable is a join key that the final projection drops — a
    /// long pipeline of intermediates much wider than the answer.
    pub fn deep_chain(patterns: usize) -> BgpQuery {
        let patterns = patterns.max(1);
        let triples = chain(patterns);
        let endpoints = vec![Variable::new("v0"), Variable::new(format!("v{patterns}"))];
        BgpQuery::named(format!("deep-chain-{patterns}"), endpoints, triples)
    }

    /// The adversarial execution workload: fan-out stars and deep chains of
    /// every size in `2..=max_patterns`, for the differential execution
    /// proptests (shapes whose intermediates dwarf their answers).
    pub fn adversarial_workload(max_patterns: usize) -> Vec<BgpQuery> {
        let mut queries = Vec::new();
        for n in 2..=max_patterns.max(2) {
            queries.push(Self::fanout_star(n));
            queries.push(Self::deep_chain(n));
        }
        queries
    }

    /// A cyclic query: a chain whose last pattern closes back on the first
    /// variable — `?v0 p1 ?v1 . ?v1 p2 ?v2 . … ?v(n-1) pn ?v0`. Cycles
    /// break the acyclicity assumptions chain/star estimators lean on: the
    /// closing edge is far more selective than independent-join reasoning
    /// predicts, so estimators that ignore it overestimate wildly. At least
    /// three patterns (two patterns would repeat an edge).
    pub fn cycle(patterns: usize) -> BgpQuery {
        let patterns = patterns.max(3);
        let triples = (0..patterns)
            .map(|i| TriplePattern::new(var(i), prop(i + 1), var((i + 1) % patterns)))
            .collect();
        BgpQuery::named(
            format!("cycle-{patterns}"),
            vec![Variable::new("v0")],
            triples,
        )
    }

    /// A cross product: two independent chains sharing no variable —
    /// `?v0 … ?v(left)` and `?w0 … ?w(right)`. The result is the Cartesian
    /// product of the two sides, the worst case for any cardinality
    /// estimator that damps joins. The query is *disconnected*, which the
    /// clique-based planner rejects; estimator tests price each connected
    /// component separately and multiply.
    pub fn cross_product(left: usize, right: usize) -> BgpQuery {
        let (left, right) = (left.max(1), right.max(1));
        let wvar = |i: usize| PatternTerm::variable(format!("w{i}"));
        let mut triples: Vec<TriplePattern> = (0..left)
            .map(|i| TriplePattern::new(var(i), prop(i + 1), var(i + 1)))
            .collect();
        triples.extend(
            (0..right).map(|i| TriplePattern::new(wvar(i), prop(left + i + 1), wvar(i + 1))),
        );
        BgpQuery::named(
            format!("cross-{left}x{right}"),
            vec![Variable::new("v0"), Variable::new("w0")],
            triples,
        )
    }

    /// The adversarial *estimation* workload: cyclic queries and cross
    /// products of every size in `3..=max_patterns`, for the estimator
    /// differential tests. Kept separate from
    /// [`adversarial_workload`](Self::adversarial_workload) because cross
    /// products are disconnected and cannot be executed by the engine
    /// end-to-end.
    pub fn estimator_adversarial_workload(max_patterns: usize) -> Vec<BgpQuery> {
        let mut queries = Vec::new();
        for n in 3..=max_patterns.max(3) {
            queries.push(Self::cycle(n));
            queries.push(Self::cross_product(n - 1, n / 2));
        }
        queries
    }
}

fn var(i: usize) -> PatternTerm {
    PatternTerm::variable(format!("v{i}"))
}

fn prop(i: usize) -> PatternTerm {
    PatternTerm::iri(format!("http://synthetic.example/p{i}"))
}

/// `?v0 p1 ?v1 . ?v1 p2 ?v2 . …`
fn chain(n: usize) -> Vec<TriplePattern> {
    (0..n)
        .map(|i| TriplePattern::new(var(i), prop(i + 1), var(i + 1)))
        .collect()
}

/// `?v0 p1 ?v1 . ?v0 p2 ?v2 . …`
fn star(n: usize) -> Vec<TriplePattern> {
    (0..n)
        .map(|i| TriplePattern::new(var(0), prop(i + 1), var(i + 1)))
        .collect()
}

/// Randomly attached patterns over a pool of `pool` variables. Every pattern
/// after the first reuses at least one variable already used, keeping the
/// query connected; a small pool makes the query dense, a large pool thin.
fn random(n: usize, pool: usize, rng: &mut StdRng) -> Vec<TriplePattern> {
    let pool = pool.max(2);
    let mut used: Vec<usize> = vec![0];
    let mut triples = Vec::with_capacity(n);
    for i in 0..n {
        let subject = if i == 0 {
            0
        } else {
            used[rng.gen_range(0..used.len())]
        };
        // The object is any pool variable different from the subject; it may
        // or may not already be used, which controls density.
        let mut object = rng.gen_range(0..pool);
        if object == subject {
            object = (object + 1) % pool;
        }
        for v in [subject, object] {
            if !used.contains(&v) {
                used.push(v);
            }
        }
        triples.push(TriplePattern::new(var(subject), prop(i + 1), var(object)));
    }
    triples
}

#[cfg(test)]
mod tests {
    use super::*;
    use cliquesquare_sparql::analysis::{self, QueryShape};

    #[test]
    fn default_workload_has_120_queries() {
        let queries = SyntheticWorkload::generate(WorkloadConfig::default());
        assert_eq!(queries.len(), 120);
        let sizes: Vec<usize> = queries.iter().map(|q| q.len()).collect();
        assert_eq!(*sizes.iter().min().unwrap(), 1);
        assert_eq!(*sizes.iter().max().unwrap(), 10);
        let avg = sizes.iter().sum::<usize>() as f64 / sizes.len() as f64;
        assert!(
            (avg - 5.5).abs() < 0.6,
            "average size {avg} far from the paper's 5.5"
        );
    }

    #[test]
    fn generation_is_deterministic() {
        let a = SyntheticWorkload::generate(WorkloadConfig::default());
        let b = SyntheticWorkload::generate(WorkloadConfig::default());
        assert_eq!(a, b);
    }

    #[test]
    fn chains_and_stars_classify_correctly() {
        let mut rng = StdRng::seed_from_u64(1);
        let chain = SyntheticWorkload::query(SyntheticShape::Chain, 6, &mut rng);
        assert_eq!(analysis::classify(&chain), QueryShape::Chain);
        let star = SyntheticWorkload::query(SyntheticShape::Star, 6, &mut rng);
        assert_eq!(analysis::classify(&star), QueryShape::Star);
    }

    #[test]
    fn all_generated_queries_are_connected() {
        for query in SyntheticWorkload::generate(WorkloadConfig::default()) {
            assert!(query.is_connected(), "{} is disconnected", query.name());
        }
    }

    #[test]
    fn dense_queries_share_more_variables_than_thin_ones() {
        let config = WorkloadConfig {
            queries_per_shape: 20,
            min_patterns: 6,
            max_patterns: 8,
            seed: 7,
        };
        let avg_join_vars = |shape: SyntheticShape| {
            let queries = SyntheticWorkload::generate_shape(shape, config);
            let per_pattern: f64 = queries
                .iter()
                .map(|q| q.join_variables().len() as f64 / q.len() as f64)
                .sum::<f64>()
                / queries.len() as f64;
            per_pattern
        };
        // Thin queries have roughly one join variable per extra pattern;
        // dense ones concentrate the joins on fewer variables.
        assert!(
            avg_join_vars(SyntheticShape::RandomDense)
                <= avg_join_vars(SyntheticShape::RandomThin) + 0.05
        );
    }

    #[test]
    fn per_shape_generation_filters_by_name() {
        let stars =
            SyntheticWorkload::generate_shape(SyntheticShape::Star, WorkloadConfig::small());
        assert_eq!(stars.len(), 5);
        assert!(stars.iter().all(|q| q.name().starts_with("star")));
    }

    #[test]
    fn adversarial_shapes_project_away_their_join_keys() {
        let star = SyntheticWorkload::fanout_star(5);
        assert_eq!(star.len(), 5);
        assert_eq!(star.distinguished().len(), 5);
        assert!(!star.distinguished().contains(&Variable::new("v0")));
        assert_eq!(analysis::classify(&star), QueryShape::Star);

        let chain = SyntheticWorkload::deep_chain(6);
        assert_eq!(chain.len(), 6);
        assert_eq!(
            chain.distinguished(),
            &[Variable::new("v0"), Variable::new("v6")]
        );
        assert_eq!(analysis::classify(&chain), QueryShape::Chain);

        let workload = SyntheticWorkload::adversarial_workload(6);
        assert_eq!(workload.len(), 10);
        assert!(workload.iter().all(|q| q.is_connected()));
    }

    #[test]
    fn cycles_are_connected_and_cross_products_are_not() {
        let cycle = SyntheticWorkload::cycle(4);
        assert_eq!(cycle.len(), 4);
        assert!(cycle.is_connected());
        // The cycle closes: v0 appears in the first and the last pattern.
        assert!(cycle
            .patterns()
            .last()
            .unwrap()
            .mentions(&Variable::new("v0")));

        let cross = SyntheticWorkload::cross_product(2, 3);
        assert_eq!(cross.len(), 5);
        assert!(!cross.is_connected());
        assert_eq!(cross.connected_components().len(), 2);

        let workload = SyntheticWorkload::estimator_adversarial_workload(5);
        assert_eq!(workload.len(), 6);
        assert!(workload.iter().any(|q| q.is_connected()));
        assert!(workload.iter().any(|q| !q.is_connected()));
    }

    #[test]
    fn single_pattern_queries_are_supported() {
        let mut rng = StdRng::seed_from_u64(3);
        for shape in SyntheticShape::ALL {
            let q = SyntheticWorkload::query(shape, 1, &mut rng);
            assert_eq!(q.len(), 1);
            assert!(!q.distinguished().is_empty());
        }
    }
}
