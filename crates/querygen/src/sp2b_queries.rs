//! An SP²Bench-flavoured query workload over the DBLP-like data of
//! `cliquesquare_rdf::sp2b`.
//!
//! Where the LUBM queries of Appendix A exercise star-heavy university
//! data, these six queries stress the two shapes the SP²Bench generator is
//! skewed towards: **chain joins** over the recency-biased
//! `dcterms:references` citation graph (S2, S3) and **skew-sensitive
//! joins** through the power-law author and journal distributions (S4, S5,
//! S6). S1 is the classic per-document metadata star. Each query declares
//! the prefixes it uses, so the set is self-contained.

use cliquesquare_sparql::parser::parse_query;
use cliquesquare_sparql::BgpQuery;

const PREFIXES: &str = "PREFIX bench: <http://localhost/vocabulary/bench/> \
     PREFIX dc: <http://purl.org/dc/elements/1.1/> \
     PREFIX dcterms: <http://purl.org/dc/terms/> \
     PREFIX swrc: <http://swrc.ontoware.org/ontology#> \
     PREFIX foaf: <http://xmlns.com/foaf/0.1/> ";

fn q(name: &str, body: &str) -> BgpQuery {
    let text = format!("{PREFIXES}{body}");
    let mut query = parse_query(&text).unwrap_or_else(|e| panic!("query {name} is invalid: {e}"));
    query.set_name(name);
    query
}

/// S1: the metadata star of every article (5 patterns, 1 join variable).
pub fn s1() -> BgpQuery {
    q(
        "S1",
        "SELECT ?A ?T ?Y WHERE { ?A a bench:Article . ?A dc:title ?T . \
         ?A dcterms:issued ?Y . ?A swrc:journal ?J . ?A swrc:pages ?P }",
    )
}

/// S2: two-hop citation chains with the endpoints' years (4 patterns).
pub fn s2() -> BgpQuery {
    q(
        "S2",
        "SELECT ?A ?B ?YA ?YB WHERE { ?A dcterms:references ?B . \
         ?B dcterms:references ?C . ?A dcterms:issued ?YA . ?B dcterms:issued ?YB }",
    )
}

/// S3: three-hop citation chains — the pure chain shape CliqueSquare's
/// clique decomposition flattens (3 patterns, 2 join variables).
pub fn s3() -> BgpQuery {
    q(
        "S3",
        "SELECT ?A ?D WHERE { ?A dcterms:references ?B . \
         ?B dcterms:references ?C . ?C dcterms:references ?D }",
    )
}

/// S4: articles joined to their creators' names — the power-law author
/// in-degree makes `?W` heavily skewed (4 patterns).
pub fn s4() -> BgpQuery {
    q(
        "S4",
        "SELECT ?A ?N WHERE { ?A a bench:Article . ?A dc:creator ?W . \
         ?W a foaf:Person . ?W foaf:name ?N }",
    )
}

/// S5: pairs of articles published in the same journal — a self-join whose
/// output is dominated by the head of the journal power law (4 patterns).
pub fn s5() -> BgpQuery {
    q(
        "S5",
        "SELECT ?A ?B ?J WHERE { ?A swrc:journal ?J . ?B swrc:journal ?J . \
         ?A dcterms:issued ?Y . ?B dcterms:issued ?Y }",
    )
}

/// S6: authors whose article cites another article, with the cited year —
/// chain and skew combined (5 patterns, 2 join variables).
pub fn s6() -> BgpQuery {
    q(
        "S6",
        "SELECT ?W ?A ?B ?Y WHERE { ?A dc:creator ?W . ?A dcterms:references ?B . \
         ?B dcterms:issued ?Y . ?A a bench:Article . ?B a bench:Article }",
    )
}

/// All six queries in order.
pub fn sp2b_queries() -> Vec<BgpQuery> {
    vec![s1(), s2(), s3(), s4(), s5(), s6()]
}

/// Looks a query up by name (`"S1"` … `"S6"`).
pub fn sp2b_query(name: &str) -> Option<BgpQuery> {
    sp2b_queries().into_iter().find(|q| q.name() == name)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cliquesquare_sparql::analysis;

    #[test]
    fn queries_parse_and_are_connected() {
        let queries = sp2b_queries();
        assert_eq!(queries.len(), 6);
        for query in &queries {
            assert!(
                query.is_connected(),
                "{} contains a cartesian product",
                query.name()
            );
        }
    }

    #[test]
    fn shapes_cover_stars_and_chains() {
        assert_eq!(analysis::stats(&s1()).join_variables, 1);
        assert_eq!(analysis::stats(&s3()).triple_patterns, 3);
        assert_eq!(analysis::stats(&s3()).join_variables, 2);
        assert_eq!(analysis::stats(&s6()).join_variables, 2);
        assert_eq!(analysis::stats(&s6()).triple_patterns, 5);
    }

    #[test]
    fn lookup_by_name() {
        assert!(sp2b_query("S4").is_some());
        assert!(sp2b_query("S7").is_none());
    }

    #[test]
    fn prefixes_expand_to_the_generator_vocabulary() {
        use cliquesquare_sparql::PatternTerm;
        let query = s4();
        let mut saw_foaf_name = false;
        for pattern in query.patterns() {
            if let PatternTerm::Constant(term) = &pattern.property {
                if term.value() == "http://xmlns.com/foaf/0.1/name" {
                    saw_foaf_name = true;
                }
            }
        }
        assert!(saw_foaf_name, "foaf:name did not expand");
    }
}
