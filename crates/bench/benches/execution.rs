//! Criterion benchmarks for plan execution (Figure 20 companion): CSQ's
//! MSC-best plan versus the best binary bushy and linear plans on
//! representative LUBM queries over the simulated cluster.

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use cliquesquare_baselines::BinaryPlanner;
use cliquesquare_bench::{bench_scale, lubm_cluster};
use cliquesquare_engine::csq::{Csq, CsqConfig};
use cliquesquare_engine::Executor;
use cliquesquare_querygen::lubm_queries::{q1, q10, q12, q4};

fn bench_plan_families(c: &mut Criterion) {
    let cluster = lubm_cluster(bench_scale());
    let csq = Csq::new(cluster.clone(), CsqConfig::default());
    let planner = BinaryPlanner::new(cluster.graph());
    let executor = Executor::new(&cluster);

    let mut group = c.benchmark_group("figure20_execution");
    for query in [q1(), q4(), q10(), q12()] {
        let (_, msc_plan, _) = csq.plan(&query);
        let bushy = planner.best_bushy(&query).expect("bushy plan");
        let linear = planner.best_linear(&query).expect("linear plan");
        group.bench_function(format!("{}/msc", query.name()), |b| {
            b.iter(|| black_box(executor.execute_logical(black_box(&msc_plan)).results.len()))
        });
        group.bench_function(format!("{}/bushy", query.name()), |b| {
            b.iter(|| black_box(executor.execute_logical(black_box(&bushy)).results.len()))
        });
        group.bench_function(format!("{}/linear", query.name()), |b| {
            b.iter(|| black_box(executor.execute_logical(black_box(&linear)).results.len()))
        });
    }
    group.finish();
}

fn bench_end_to_end(c: &mut Criterion) {
    let cluster = lubm_cluster(bench_scale());
    let csq = Csq::new(cluster, CsqConfig::default());
    let mut group = c.benchmark_group("csq_end_to_end");
    for query in [q1(), q10()] {
        group.bench_function(query.name().to_string(), |b| {
            b.iter(|| black_box(csq.run(black_box(&query))).result_count)
        });
    }
    group.finish();
}

criterion_group!(benches, bench_plan_families, bench_end_to_end);
criterion_main!(benches);
