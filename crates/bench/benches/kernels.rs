//! Criterion micro-benchmarks for the relation-level execution kernels: the
//! column-major sort and merge-compare paths of `Relation`, the run-length
//! factorized join (run emission and projection-boundary expansion), and the
//! fill-proportional shuffle partitioner. These isolate the kernels the
//! `report_execution` wall-clock columns are built from.

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use cliquesquare_engine::{hash_partition, join_runs, JoinOrder, Relation};
use cliquesquare_rdf::TermId;
use cliquesquare_sparql::Variable;

const ROWS: usize = 20_000;

fn v(name: &str) -> Variable {
    Variable::new(name)
}

/// An unsorted `(x, a, b)` relation whose key column cycles through
/// `rows / 8` distinct values (so sorts see real duplicate groups).
fn unsorted(rows: usize) -> Relation {
    let mut relation = Relation::empty(vec![v("x"), v("a"), v("b")]);
    let keys = (rows / 8).max(1) as u32;
    for i in 0..rows {
        let i = i as u32;
        relation.push_row_unordered(&[
            TermId((i.wrapping_mul(2_654_435_761)) % keys),
            TermId(i),
            TermId(i ^ 0x5a5a),
        ]);
    }
    relation
}

/// A canonical (key-sorted) `(x, payload)` relation with `fanout` rows per
/// key — the star-join input shape.
fn sorted_star_input(rows: usize, fanout: usize, payload: &str) -> Relation {
    let mut relation = Relation::empty(vec![v("x"), v(payload)]);
    for i in 0..rows {
        relation.push_row(&[TermId((i / fanout) as u32), TermId(i as u32)]);
    }
    relation
}

fn bench_sort(c: &mut Criterion) {
    let base = unsorted(ROWS);
    let mut group = c.benchmark_group("kernels_sort");
    group.bench_function("canonicalize_20k_x3", |b| {
        b.iter(|| {
            let mut relation = base.clone();
            relation.canonicalize();
            black_box(relation.len())
        })
    });
    group.finish();
}

fn bench_merge_join(c: &mut Criterion) {
    let left = sorted_star_input(ROWS, 4, "a");
    let right = sorted_star_input(ROWS, 4, "b");
    let key = [v("x")];
    let mut group = c.benchmark_group("kernels_merge_join");
    group.bench_function("eager_20k_x_20k", |b| {
        b.iter(|| {
            black_box(Relation::join_ordered(&[&left, &right], &key, JoinOrder::Natural).len())
        })
    });
    group.finish();
}

fn bench_factorized(c: &mut Criterion) {
    let left = sorted_star_input(ROWS, 4, "a");
    let right = sorted_star_input(ROWS, 4, "b");
    let key = [v("x")];
    let mut group = c.benchmark_group("kernels_factorized");
    group.bench_function("join_runs_20k_x_20k", |b| {
        b.iter(|| black_box(join_runs(&[&left, &right], &key, &[]).runs()))
    });
    let runs = join_runs(&[&left, &right], &key, &[]);
    group.bench_function("expand_20k_x_20k", |b| {
        b.iter(|| black_box(runs.expand().len()))
    });
    group.bench_function("project_expand_20k_x_20k", |b| {
        let vars = [v("a"), v("b")];
        b.iter(|| black_box(runs.project_expand(&vars).len()))
    });
    group.finish();
}

fn bench_shuffle(c: &mut Criterion) {
    let relation = unsorted(ROWS);
    let key = [v("x")];
    let mut group = c.benchmark_group("kernels_shuffle");
    group.bench_function("hash_partition_20k_8n", |b| {
        b.iter(|| black_box(hash_partition(&relation, &key, 8).len()))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_sort,
    bench_merge_join,
    bench_factorized,
    bench_shuffle
);
criterion_main!(benches);
