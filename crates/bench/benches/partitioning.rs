//! Criterion benchmarks for the partitioner (Section 5.1) and an ablation of
//! the co-located (PWOC) first-level joins it enables: the same first-level
//! star join executed as a co-located MapJoin versus forced through a
//! shuffling ReduceJoin.

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use cliquesquare_bench::{bench_scale, lubm_graph};
use cliquesquare_core::{Optimizer, Variant};
use cliquesquare_engine::physical::{PhysicalOp, PhysicalPlan};
use cliquesquare_engine::{translate, Executor};
use cliquesquare_mapreduce::{Cluster, ClusterConfig, PartitionedStore};
use cliquesquare_rdf::TriplePosition;
use cliquesquare_sparql::parser::parse_query;

fn bench_partition_build(c: &mut Criterion) {
    let graph = lubm_graph(bench_scale());
    let mut group = c.benchmark_group("partition_build");
    for nodes in [1usize, 4, 7, 16] {
        group.bench_function(format!("{nodes}_nodes"), |b| {
            b.iter(|| black_box(PartitionedStore::build(black_box(&graph), nodes)).stats())
        });
    }
    group.finish();
}

fn bench_scans(c: &mut Criterion) {
    let graph = lubm_graph(bench_scale());
    let store = PartitionedStore::build(&graph, 7);
    let works_for = graph
        .lookup(&cliquesquare_rdf::Term::iri(
            cliquesquare_rdf::term::vocab::ub("worksFor"),
        ))
        .unwrap();
    let mut group = c.benchmark_group("partition_scan");
    group.bench_function("property_scan", |b| {
        b.iter(|| {
            black_box(store.scan_cardinality(
                TriplePosition::Subject,
                Some(black_box(works_for)),
                None,
            ))
        })
    });
    group.bench_function("full_scan", |b| {
        b.iter(|| black_box(store.scan_cardinality(TriplePosition::Subject, None, None)))
    });
    group.finish();
}

/// Rewrites every MapJoin of a plan into a ReduceJoin, simulating a naive
/// partitioning under which no first-level join is co-located.
fn force_reduce_joins(plan: &PhysicalPlan) -> PhysicalPlan {
    let ops = plan
        .ops()
        .iter()
        .map(|op| match op {
            PhysicalOp::MapJoin {
                attributes,
                inputs,
                output,
            } => PhysicalOp::ReduceJoin {
                attributes: attributes.clone(),
                inputs: inputs.clone(),
                output: output.clone(),
            },
            other => other.clone(),
        })
        .collect();
    PhysicalPlan::new(ops, plan.root())
}

fn bench_colocated_vs_shuffled(c: &mut Criterion) {
    let graph = lubm_graph(bench_scale());
    let cluster = Cluster::load(graph, ClusterConfig::with_nodes(7));
    let query = parse_query(
        "SELECT ?x ?d ?e WHERE { ?x ub:worksFor ?d . ?x ub:emailAddress ?e . ?x rdf:type ub:FullProfessor }",
    )
    .unwrap();
    let logical = Optimizer::with_variant(Variant::Msc)
        .optimize(&query)
        .flattest_plans()[0]
        .clone();
    let colocated = translate(&logical, cluster.graph());
    let shuffled = force_reduce_joins(&colocated);
    let executor = Executor::new(&cluster);

    let mut group = c.benchmark_group("pwoc_ablation");
    group.bench_function("colocated_map_join", |b| {
        b.iter(|| {
            black_box(executor.execute(black_box(&colocated)))
                .results
                .len()
        })
    });
    group.bench_function("forced_reduce_join", |b| {
        b.iter(|| {
            black_box(executor.execute(black_box(&shuffled)))
                .results
                .len()
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_partition_build,
    bench_scans,
    bench_colocated_vs_shuffled
);
criterion_main!(benches);
