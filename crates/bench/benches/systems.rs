//! Criterion benchmarks for the system comparison (Figure 21 companion):
//! CSQ vs SHAPE-2f vs H2RDF+ on one selective and one non-selective query.

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use cliquesquare_baselines::{H2RdfSystem, ShapeSystem};
use cliquesquare_bench::{bench_scale, lubm_cluster};
use cliquesquare_engine::csq::{Csq, CsqConfig};
use cliquesquare_querygen::lubm_queries::{q12, q4};

fn bench_systems(c: &mut Criterion) {
    let cluster = lubm_cluster(bench_scale());
    let csq = Csq::new(cluster.clone(), CsqConfig::default());
    let shape = ShapeSystem::new(&cluster);
    let h2rdf = H2RdfSystem::new(&cluster);

    let mut group = c.benchmark_group("figure21_systems");
    for query in [q4(), q12()] {
        group.bench_function(format!("{}/csq", query.name()), |b| {
            b.iter(|| black_box(csq.run(black_box(&query))).result_count)
        });
        group.bench_function(format!("{}/shape", query.name()), |b| {
            b.iter(|| black_box(shape.run(black_box(&query))).result_count)
        });
        group.bench_function(format!("{}/h2rdf", query.name()), |b| {
            b.iter(|| black_box(h2rdf.run(black_box(&query))).result_count)
        });
    }
    group.finish();
}

criterion_group!(benches, bench_systems);
criterion_main!(benches);
