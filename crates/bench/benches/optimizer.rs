//! Criterion benchmarks for the logical optimizer (Figure 18 companion):
//! optimization time per variant on representative query shapes, plus the
//! complexity-bound computation of Figure 8.

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use cliquesquare_core::complexity::worst_case_decompositions;
use cliquesquare_core::decomposition::DecompositionLimits;
use cliquesquare_core::{Optimizer, OptimizerConfig, Variant};
use cliquesquare_querygen::lubm_queries::{q11, q14, q7};
use cliquesquare_querygen::{SyntheticShape, SyntheticWorkload};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_variants_on_shapes(c: &mut Criterion) {
    let mut group = c.benchmark_group("optimize_shape");
    let mut rng = StdRng::seed_from_u64(5);
    let queries = vec![
        (
            "chain8",
            SyntheticWorkload::query(SyntheticShape::Chain, 8, &mut rng),
        ),
        (
            "star8",
            SyntheticWorkload::query(SyntheticShape::Star, 8, &mut rng),
        ),
        (
            "dense8",
            SyntheticWorkload::query(SyntheticShape::RandomDense, 8, &mut rng),
        ),
        (
            "thin8",
            SyntheticWorkload::query(SyntheticShape::RandomThin, 8, &mut rng),
        ),
    ];
    // The practical variants identified by the paper.
    for variant in [Variant::MscPlus, Variant::Mxc, Variant::Msc] {
        for (label, query) in &queries {
            group.bench_function(format!("{variant}/{label}"), |b| {
                let optimizer = Optimizer::with_variant(variant);
                b.iter(|| black_box(optimizer.optimize(black_box(query))).plans.len())
            });
        }
    }
    group.finish();
}

fn bench_lubm_queries(c: &mut Criterion) {
    let mut group = c.benchmark_group("optimize_lubm");
    let config = OptimizerConfig::recommended()
        .with_max_plans(5_000)
        .with_limits(DecompositionLimits {
            max_decompositions: 1_000,
            max_candidate_cliques: 10_000,
        });
    for query in [q7(), q11(), q14()] {
        group.bench_function(query.name().to_string(), |b| {
            let optimizer = Optimizer::new(config);
            b.iter(|| black_box(optimizer.optimize(black_box(&query))).plans.len())
        });
    }
    group.finish();
}

fn bench_complexity_bounds(c: &mut Criterion) {
    c.bench_function("figure8_bounds_n2_to_n10", |b| {
        b.iter(|| {
            let mut total = 0u128;
            for n in 2..=10 {
                for variant in Variant::ALL {
                    total = total.wrapping_add(worst_case_decompositions(variant, black_box(n)));
                }
            }
            total
        })
    });
}

criterion_group!(
    benches,
    bench_variants_on_shapes,
    bench_lubm_queries,
    bench_complexity_bounds
);
criterion_main!(benches);
