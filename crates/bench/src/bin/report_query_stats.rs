//! Reproduces **Figure 22**: the characteristics of the 14 LUBM queries —
//! number of triple patterns, number of join variables and result
//! cardinality on the generated dataset (the paper reports cardinalities on
//! LUBM10k; ours are on the scaled-down generator, so only #tps and #jv are
//! expected to match exactly).
//!
//! Usage: `cargo run --release -p cliquesquare-bench --bin report_query_stats [-- --threads N]`
//!
//! The naive reference evaluator dominates this report's runtime;
//! `--threads N` (or `CSQ_THREADS`) evaluates the binding extensions on `N`
//! OS threads with bit-identical cardinalities.

use cliquesquare_bench::{lubm_cluster, report_scale, runtime_from_args, table};
use cliquesquare_engine::reference::reference_eval_with;
use cliquesquare_querygen::lubm_queries;
use cliquesquare_sparql::analysis;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let runtime = runtime_from_args(&args);
    let cluster = lubm_cluster(report_scale());
    println!(
        "== Figure 22: LUBM query characteristics ==\ndataset: {} triples ({} thread(s))\n",
        cluster.graph().len(),
        runtime.threads()
    );
    let mut rows = Vec::new();
    for query in lubm_queries::lubm_queries() {
        let stats = analysis::stats(&query);
        let cardinality = reference_eval_with(cluster.graph(), &query, &runtime).len();
        rows.push(vec![
            query.name().to_string(),
            stats.triple_patterns.to_string(),
            stats.join_variables.to_string(),
            stats.shape.to_string(),
            cardinality.to_string(),
        ]);
    }
    println!(
        "{}",
        table(
            &["Query", "#tps", "#jv", "shape", "|Q| (this dataset)"],
            &rows
        )
    );
}
