//! Reproduces **Figures 16–19**: for each of the eight CliqueSquare variants
//! and each synthetic query shape (chain, dense, thin, star), the average
//! number of generated plans, the average height-optimality ratio, the
//! average optimization time and the average uniqueness ratio over the
//! 120-query synthetic workload of Section 6.2.
//!
//! Usage: `cargo run --release -p cliquesquare-bench --bin report_variants [--fast]`
//!
//! The paper stops each optimization after 100 s; we instead cap the number
//! of enumerated decompositions and plans (the SC / XC variants explode
//! exactly as in the paper), so the qualitative conclusions are identical:
//! MXC+/XC+ fail on some queries, SC/XC produce unusably many plans, and
//! MSC+/MXC/MSC are the practical variants.

use cliquesquare_bench::{fmt_f64, fmt_percent, table};
use cliquesquare_core::decomposition::DecompositionLimits;
use cliquesquare_core::planspace::{measure_query, QueryMeasurement};
use cliquesquare_core::{OptimizerConfig, Variant};
use cliquesquare_querygen::{SyntheticShape, SyntheticWorkload, WorkloadConfig};

fn main() {
    let fast = std::env::args().any(|a| a == "--fast");
    let workload_config = if fast {
        WorkloadConfig {
            queries_per_shape: 12,
            min_patterns: 1,
            max_patterns: 8,
            ..WorkloadConfig::default()
        }
    } else {
        WorkloadConfig::default()
    };
    let optimizer_config = OptimizerConfig::recommended()
        .with_max_plans(20_000)
        .with_limits(DecompositionLimits {
            max_decompositions: 2_000,
            max_candidate_cliques: 20_000,
        });

    println!("== Section 6.2: CliqueSquare variant comparison ==");
    println!(
        "workload: {} synthetic queries per shape, {}-{} triple patterns\n",
        workload_config.queries_per_shape,
        workload_config.min_patterns,
        workload_config.max_patterns
    );

    // shape -> variant -> measurements
    let shapes = SyntheticShape::ALL;
    let mut measurements: Vec<Vec<Vec<QueryMeasurement>>> =
        vec![vec![Vec::new(); Variant::ALL.len()]; shapes.len()];
    for (si, &shape) in shapes.iter().enumerate() {
        let queries = SyntheticWorkload::generate_shape(shape, workload_config);
        for (vi, &variant) in Variant::ALL.iter().enumerate() {
            for query in &queries {
                measurements[si][vi].push(measure_query(query, variant, optimizer_config));
            }
        }
    }

    let avg = |values: &[f64]| values.iter().sum::<f64>() / values.len().max(1) as f64;
    let shape_headers: Vec<&str> = {
        let mut h = vec!["Option"];
        h.extend(shapes.iter().map(|s| s.label()));
        h
    };

    // Figure 16: average number of generated plans.
    let mut rows = Vec::new();
    for (vi, variant) in Variant::ALL.iter().enumerate() {
        let mut row = vec![variant.name().to_string()];
        for (si, _) in shapes.iter().enumerate() {
            let plans: Vec<f64> = measurements[si][vi]
                .iter()
                .map(|m| m.plans as f64)
                .collect();
            row.push(fmt_f64(avg(&plans)));
        }
        rows.push(row);
    }
    println!("Figure 16: average number of plans per algorithm and query shape");
    println!("{}", table(&shape_headers, &rows));

    // Figure 17: average optimality ratio.
    let mut rows = Vec::new();
    for (vi, variant) in Variant::ALL.iter().enumerate() {
        let mut row = vec![variant.name().to_string()];
        for (si, _) in shapes.iter().enumerate() {
            let ratios: Vec<f64> = measurements[si][vi]
                .iter()
                .map(QueryMeasurement::optimality_ratio)
                .collect();
            row.push(fmt_percent(avg(&ratios)));
        }
        rows.push(row);
    }
    println!("Figure 17: average optimality ratio per algorithm and query shape");
    println!("{}", table(&shape_headers, &rows));

    // Figure 18: average optimization time (ms).
    let mut rows = Vec::new();
    for (vi, variant) in Variant::ALL.iter().enumerate() {
        let mut row = vec![variant.name().to_string()];
        for (si, _) in shapes.iter().enumerate() {
            let times: Vec<f64> = measurements[si][vi].iter().map(|m| m.time_ms).collect();
            row.push(fmt_f64(avg(&times)));
        }
        rows.push(row);
    }
    println!("Figure 18: average optimization time (ms) per algorithm and query shape");
    println!("{}", table(&shape_headers, &rows));

    // Figure 19: average uniqueness ratio.
    let mut rows = Vec::new();
    for (vi, variant) in Variant::ALL.iter().enumerate() {
        let mut row = vec![variant.name().to_string()];
        for (si, _) in shapes.iter().enumerate() {
            let ratios: Vec<f64> = measurements[si][vi]
                .iter()
                .map(QueryMeasurement::uniqueness_ratio)
                .collect();
            row.push(fmt_percent(avg(&ratios)));
        }
        rows.push(row);
    }
    println!("Figure 19: average uniqueness ratio per algorithm and query shape");
    println!("{}", table(&shape_headers, &rows));

    // Failure summary (the reason MXC+ / XC+ are discarded by the paper).
    let mut rows = Vec::new();
    for (vi, variant) in Variant::ALL.iter().enumerate() {
        let mut row = vec![variant.name().to_string()];
        for (si, _) in shapes.iter().enumerate() {
            let failures = measurements[si][vi].iter().filter(|m| m.plans == 0).count();
            row.push(failures.to_string());
        }
        rows.push(row);
    }
    println!("Companion table: queries for which the variant found no plan");
    println!("{}", table(&shape_headers, &rows));
}
