//! Reproduces **Figure 8**: the worst-case upper bounds on the number of
//! clique decompositions a single optimization step may enumerate, per
//! variant, as a function of the number of variable-graph nodes `n`.
//!
//! Usage: `cargo run --release -p cliquesquare-bench --bin report_complexity`

use cliquesquare_bench::table;
use cliquesquare_core::complexity::worst_case_decompositions;
use cliquesquare_core::Variant;

fn main() {
    println!("== Figure 8: worst-case number of decompositions D(n) per variant ==\n");
    let headers: Vec<String> = std::iter::once("n".to_string())
        .chain(Variant::ALL.iter().map(|v| v.name().to_string()))
        .collect();
    let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
    let mut rows = Vec::new();
    for n in 2..=10usize {
        let mut row = vec![n.to_string()];
        for variant in Variant::ALL {
            let bound = worst_case_decompositions(variant, n);
            row.push(if bound == u128::MAX {
                "overflow".to_string()
            } else {
                bound.to_string()
            });
        }
        rows.push(row);
    }
    println!("{}", table(&header_refs, &rows));
    println!(
        "Formulas (paper, Figure 8): MXC+ C(n+1,⌈n/2⌉); MSC+ C(2n+1,⌈n/2⌉); MXC S(n,⌈n/2⌉); \
         MSC C(2^n-1,⌈n/2⌉); XC+ Σ C(n+1,k); SC+ Σ C(2n+1,k); XC Σ S(n,k); SC Σ C(2^n-1,k)."
    );
}
