//! Reproduces **Figure 20**: simulated execution time of the plan chosen by
//! the cost model among the CliqueSquare-MSC plans, versus the best binary
//! bushy plan and the best binary linear plan, for the 14 LUBM queries.
//! Next to each query we print the paper-style annotation
//! `Qi(#tps | jobs_MSC jobs_bushy jobs_linear)` where `M` denotes a map-only
//! job.
//!
//! The simulated columns come from the Section 5.4 cost model and are
//! independent of the thread count. The `wall …` columns are *measured*
//! wall-clock times of the chosen MSC plan on this machine: once on the
//! sequential runtime and once on `--threads N` OS threads (best of several
//! runs), together with the resulting real speedup. Both executions are
//! asserted to produce bit-identical answers.
//!
//! The `row allocs` / `Mrow/s` columns come from the engine's relation
//! counters: the flat columnar layout performs **zero** per-row heap
//! allocations on the join and shuffle paths, and the throughput column
//! reports join output rows per wall-second of the sequential execution.
//! The `sorts` / `elided` / `resorts` columns come from the same counters:
//! index sorts the sequential execution performed, ordering requirements the
//! interesting-orders pass satisfied without sorting, and join inputs that
//! paid a column-permuted re-sort.
//!
//! Usage: `cargo run --release -p cliquesquare-bench --bin report_execution [-- --threads N] [--scale U] [--cardinality] [--snapshot [PATH]] [--baseline [PATH]]`
//! (`--threads auto` uses all cores; default: `CSQ_THREADS` or sequential.
//! `--scale U` generates U LUBM universities — larger datasets amortize the
//! per-wave thread spawn cost, which is what the speedup column measures.
//! `--snapshot [PATH]` additionally writes the per-query wall times and
//! totals to `PATH` — `BENCH_execution.json` by default — as the recorded
//! perf-trajectory artifact.
//! `--cardinality` additionally runs each query with the cost model's
//! per-operator estimates attached as `est_rows` span attributes, prints
//! estimated-vs-actual rows as per-query median/max q-error for the
//! statistics-driven estimator *and* the uniform baseline (plus the same
//! differential on the SP²Bench mix), and records the per-query medians
//! into the snapshot.
//! `--baseline [PATH]` reads a previously recorded snapshot, prints a
//! counter regression table diffing `sorts_performed` /
//! `join_inputs_resorted` / `peak_rows` / median q-error against it, and
//! **exits nonzero** when any query regressed — CI gates on this. Run it at
//! the scale the baseline was recorded at — the repo-root default.
//! `--profile [PATH]` additionally runs each query once with per-query
//! profiling, asserts the profiled answers are bit-identical to the
//! unprofiled ones, and writes the span trees as a Chrome-trace JSON —
//! `BENCH_profile_trace.json` by default; open it in `chrome://tracing` or
//! Perfetto.)

use cliquesquare_baselines::BinaryPlanner;
use cliquesquare_bench::{
    baseline_path_from_args, fmt_f64, lubm_cluster, measure_seconds, read_execution_snapshot,
    read_snapshot_meta, report_scale, runtime_from_args, scale_from_args, snapshot_path_from_args,
    table, write_execution_snapshot, SnapshotQuery,
};
use cliquesquare_core::LogicalPlan;
use cliquesquare_engine::csq::{Csq, CsqConfig};
use cliquesquare_engine::relation::stats as relation_stats;
use cliquesquare_engine::{q_error, translate, Executor, MapReduceCostModel, PhysicalPlan};
use cliquesquare_mapreduce::Cluster;
use cliquesquare_querygen::lubm_queries;
use cliquesquare_sparql::BgpQuery;

/// Wall-clock measurement repetitions (best-of).
const REPEATS: usize = 5;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let runtime = runtime_from_args(&args);
    let cardinality = args.iter().any(|a| a == "--cardinality");
    let cluster = lubm_cluster(scale_from_args(&args, report_scale()));
    println!(
        "== Figure 20: MSC plans vs best binary bushy / linear plans ==\n\
         dataset: {} triples on {} nodes; measured columns on {} thread(s), best of {}\n",
        cluster.graph().len(),
        cluster.nodes(),
        runtime.threads(),
        REPEATS
    );
    let csq = Csq::new(cluster.clone(), CsqConfig::default());
    let planner = BinaryPlanner::new(cluster.graph());
    let executor = Executor::sequential(&cluster);
    let parallel_executor = Executor::with_runtime(&cluster, runtime.clone());

    let mut rows = Vec::new();
    let mut snapshot_queries: Vec<SnapshotQuery> = Vec::new();
    let mut cardinality_rows: Vec<Vec<String>> = Vec::new();
    let mut all_stats_q: Vec<f64> = Vec::new();
    let mut all_uniform_q: Vec<f64> = Vec::new();
    for query in lubm_queries::lubm_queries() {
        let report = csq.run(&query);
        let run_binary = |plan: Option<LogicalPlan>| {
            plan.map(|p| executor.execute_logical(&p)).map(|out| {
                (
                    out.job_log.descriptor(),
                    out.simulated_seconds,
                    out.distinct_count(),
                )
            })
        };
        let bushy = run_binary(planner.best_bushy(&query)).expect("bushy plan");
        let linear = run_binary(planner.best_linear(&query)).expect("linear plan");
        assert_eq!(
            report.result_count,
            bushy.2,
            "{}: answer mismatch",
            query.name()
        );
        assert_eq!(
            report.result_count,
            linear.2,
            "{}: answer mismatch",
            query.name()
        );

        // Measured wall-clock of the chosen MSC plan: sequential vs parallel
        // runtime, identical answers enforced.
        let physical = translate(&report.chosen_plan, cluster.graph());
        let sequential_output = executor.execute(&physical);
        let parallel_output = parallel_executor.execute(&physical);
        assert_eq!(
            sequential_output.results,
            parallel_output.results,
            "{}: parallel runtime changed the answer set",
            query.name()
        );
        assert_eq!(
            sequential_output.job_log.descriptor(),
            parallel_output.job_log.descriptor(),
            "{}: parallel runtime changed the job descriptor",
            query.name()
        );
        let wall_seq = measure_seconds(REPEATS, || {
            std::hint::black_box(executor.execute(&physical));
        });
        let wall_par = measure_seconds(REPEATS, || {
            std::hint::black_box(parallel_executor.execute(&physical));
        });
        // Allocation / throughput counters of one sequential execution.
        relation_stats::reset();
        std::hint::black_box(executor.execute(&physical));
        let rel_stats = relation_stats::snapshot();
        let join_mrows_per_s = rel_stats.join_rows_out as f64 / wall_seq / 1e6;
        // Since the shared-consumer order splitting in interesting_orders, no
        // LUBM query re-sorts any join input. Gate on it staying that way.
        assert_eq!(
            rel_stats.join_inputs_resorted,
            0,
            "{}: join input paid a re-sort (interesting-orders regression)",
            query.name()
        );
        // Q1 is the canonical star join: its factorized execution must emit
        // strictly fewer runs than it materializes result rows — the
        // output-sublinear intermediate the factorization exists for.
        if query.name() == "Q1" {
            assert!(
                rel_stats.runs_emitted > 0,
                "Q1: star join no longer takes the factorized path"
            );
            assert!(
                rel_stats.runs_emitted < report.result_count as u64,
                "Q1: factorized runs ({}) not sublinear in results ({})",
                rel_stats.runs_emitted,
                report.result_count
            );
        }

        // `--cardinality`: estimated vs actual rows per operator, for the
        // statistics-driven estimator and the uniform baseline, from one
        // profiled execution each (answers asserted unchanged).
        let q_summary = cardinality.then(|| {
            let stats = operator_q_errors(
                &MapReduceCostModel::new(&cluster),
                &executor,
                &physical,
                &sequential_output,
                query.name(),
            );
            let uniform = operator_q_errors(
                &MapReduceCostModel::uniform(&cluster),
                &executor,
                &physical,
                &sequential_output,
                query.name(),
            );
            (stats, uniform)
        });
        if let Some((stats, uniform)) = &q_summary {
            cardinality_rows.push(vec![
                query.name().to_string(),
                stats.len().to_string(),
                fmt_f64(median(&q_values(stats))),
                fmt_f64(max(&q_values(stats))),
                fmt_f64(median(&q_values(uniform))),
                fmt_f64(max(&q_values(uniform))),
            ]);
            all_stats_q.extend(q_values(stats));
            all_uniform_q.extend(q_values(uniform));
        }

        snapshot_queries.push(SnapshotQuery {
            name: query.name().to_string(),
            patterns: query.len(),
            jobs: report.job_descriptor.clone(),
            simulated_seconds: report.simulated_seconds,
            wall_sequential_ms: wall_seq * 1e3,
            wall_parallel_ms: wall_par * 1e3,
            results: report.result_count,
            sorts_performed: rel_stats.sorts_performed,
            sorts_elided: rel_stats.sorts_elided,
            join_inputs_resorted: rel_stats.join_inputs_resorted,
            runs_emitted: rel_stats.runs_emitted,
            rows_expanded: rel_stats.rows_expanded,
            peak_rows: rel_stats.peak_rows,
            peak_bytes: rel_stats.peak_bytes,
            median_q_error: q_summary
                .as_ref()
                .map(|(stats, _)| median(&q_values(stats))),
            max_q_error: q_summary.as_ref().map(|(stats, _)| max(&q_values(stats))),
        });
        rows.push(vec![
            format!(
                "{}({}|{}{}{})",
                query.name(),
                query.len(),
                report.job_descriptor,
                bushy.0,
                linear.0
            ),
            report.plan_height.to_string(),
            fmt_f64(report.simulated_seconds),
            fmt_f64(bushy.1),
            fmt_f64(linear.1),
            fmt_f64(bushy.1 / report.simulated_seconds),
            fmt_f64(linear.1 / report.simulated_seconds),
            fmt_f64(wall_seq * 1e3),
            fmt_f64(wall_par * 1e3),
            fmt_f64(wall_seq / wall_par),
            fmt_f64(join_mrows_per_s),
            rel_stats.row_allocs.to_string(),
            rel_stats.sorts_performed.to_string(),
            rel_stats.sorts_elided.to_string(),
            rel_stats.join_inputs_resorted.to_string(),
            rel_stats.runs_emitted.to_string(),
            rel_stats.rows_expanded.to_string(),
            rel_stats.peak_rows.to_string(),
            report.result_count.to_string(),
        ]);
    }
    println!(
        "{}",
        table(
            &[
                "Query(#tps|jobs)",
                "MSC height",
                "MSC-Best (s)",
                "Best Bushy (s)",
                "Best Linear (s)",
                "bushy/MSC",
                "linear/MSC",
                "wall 1T (ms)",
                "wall NT (ms)",
                "speedup",
                "Mrow/s",
                "row allocs",
                "sorts",
                "elided",
                "resorts",
                "runs",
                "expanded",
                "peak rows",
                "|Q|",
            ],
            &rows
        )
    );
    println!(
        "Columns `MSC-Best`..`linear/MSC` are simulated (cost model, thread-independent); \
         `wall *` columns are measured on this machine. `Mrow/s` is join output throughput \
         of the sequential run; `row allocs` counts per-row heap allocations on the \
         join/shuffle paths (always 0 with the flat columnar relations); `sorts`/`elided` \
         count index sorts performed vs ordering requirements the interesting-orders pass \
         satisfied without sorting, and `resorts` counts join inputs that paid a re-sort. \
         `runs`/`expanded` count factorized join runs emitted vs rows materialized at the \
         projection boundary, and `peak rows` is the largest single join intermediate."
    );
    println!("Expected shape (paper): MSC plans are fastest for every query, up to ~2x vs bushy and up to ~16x vs linear.");

    if cardinality {
        println!("\n== Cardinality estimation: per-operator q-error (est vs measured rows) ==");
        println!(
            "{}",
            table(
                &[
                    "Query",
                    "ops",
                    "stats median",
                    "stats max",
                    "uniform median",
                    "uniform max",
                ],
                &cardinality_rows
            )
        );
        println!(
            "LUBM workload q-error: statistics median {} / max {}, uniform median {} / max {} \
             (q-error = max(est/actual, actual/est); 1.0 is perfect).",
            fmt_f64(median(&all_stats_q)),
            fmt_f64(max(&all_stats_q)),
            fmt_f64(median(&all_uniform_q)),
            fmt_f64(max(&all_uniform_q)),
        );
        sp2b_cardinality_differential(runtime.threads());
    }

    if let Some(path) = baseline_path_from_args(&args) {
        if print_baseline_diff(&path, cluster.graph().len(), &snapshot_queries) {
            eprintln!(
                "error: counter regression vs {path} (see table above); \
                 re-record the snapshot with --snapshot if the change is intended"
            );
            std::process::exit(1);
        }
    }

    if let Some(path) = snapshot_path_from_args(&args) {
        let total: f64 = snapshot_queries.iter().map(|q| q.wall_sequential_ms).sum();
        write_execution_snapshot(
            &path,
            cluster.graph().len(),
            cluster.nodes(),
            runtime.threads(),
            &snapshot_queries,
        )
        .expect("write bench snapshot");
        println!("\nWrote bench snapshot to {path} (total sequential wall: {total:.3} ms).");
    }

    if let Some(path) = profile_path_from_args(&args) {
        write_profile_trace(&path, &csq, &parallel_executor);
    }
}

/// One operator's estimated-vs-actual cardinality: `(span, est, actual)`.
type OpCard = (String, u64, u64);

/// Executes `plan` profiled with `model`'s per-operator estimates attached,
/// asserts the answers match the unprofiled `reference` execution, and
/// extracts every `(est_rows, rows_out)` pair from the span tree.
fn operator_q_errors(
    model: &MapReduceCostModel,
    executor: &Executor,
    plan: &PhysicalPlan,
    reference: &cliquesquare_engine::ExecutionOutput,
    query_name: &str,
) -> Vec<OpCard> {
    let cards = model.estimate_cards(plan);
    let output = executor.execute_profiled_with_estimates(plan, &cards);
    assert_eq!(
        output.results, reference.results,
        "{query_name}: estimate-annotated profiling changed the answer set"
    );
    let mut pairs = Vec::new();
    if let Some(root) = output.profile {
        collect_estimates(&root, &mut pairs);
    }
    pairs
}

/// Walks a span tree collecting every node that carries an `est_rows`
/// attribute next to its measured `rows_out`.
fn collect_estimates(node: &cliquesquare_obs::SpanNode, out: &mut Vec<OpCard>) {
    if let Some(&(_, est)) = node.attrs.iter().find(|(name, _)| name == "est_rows") {
        out.push((node.name.clone(), est, node.rows_out));
    }
    for child in &node.children {
        collect_estimates(child, out);
    }
}

/// The q-errors of a per-operator cardinality list.
fn q_values(cards: &[OpCard]) -> Vec<f64> {
    cards
        .iter()
        .map(|&(_, est, actual)| q_error(est, actual))
        .collect()
}

/// Median of a non-empty sample (mean of the middle pair for even sizes);
/// 1.0 — the perfect q-error — for an empty one.
fn median(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 1.0;
    }
    let mut sorted = values.to_vec();
    sorted.sort_by(|a, b| a.total_cmp(b));
    let mid = sorted.len() / 2;
    if sorted.len() % 2 == 1 {
        sorted[mid]
    } else {
        (sorted[mid - 1] + sorted[mid]) / 2.0
    }
}

/// Largest value of a sample (1.0 for an empty one).
fn max(values: &[f64]) -> f64 {
    values.iter().copied().fold(1.0f64, f64::max)
}

/// The SP²B leg of the `--cardinality` differential: plans the SP²Bench
/// query mix on a tiny DBLP-like cluster and prints the workload median/max
/// q-error of the statistics estimator next to the uniform baseline. Kept
/// at a fixed small scale — the point is the estimator comparison on a
/// power-law (non-LUBM) value distribution, not wall-clock.
fn sp2b_cardinality_differential(threads: usize) {
    use cliquesquare_mapreduce::ClusterConfig;
    use cliquesquare_rdf::{Sp2bGenerator, Sp2bScale};

    let graph = Sp2bGenerator::new(Sp2bScale::tiny()).generate();
    let cluster = Cluster::load(graph, ClusterConfig::with_nodes(7));
    let csq = Csq::new(cluster.clone(), CsqConfig::default());
    let executor = Executor::sequential(&cluster);
    let mut stats_q = Vec::new();
    let mut uniform_q = Vec::new();
    let queries: Vec<BgpQuery> = cliquesquare_querygen::sp2b_queries();
    for query in &queries {
        let (_, chosen, _) = csq.plan(query);
        let physical = translate(&chosen, cluster.graph());
        let reference = executor.execute(&physical);
        stats_q.extend(q_values(&operator_q_errors(
            &MapReduceCostModel::new(&cluster),
            &executor,
            &physical,
            &reference,
            query.name(),
        )));
        uniform_q.extend(q_values(&operator_q_errors(
            &MapReduceCostModel::uniform(&cluster),
            &executor,
            &physical,
            &reference,
            query.name(),
        )));
    }
    println!(
        "SP2B workload q-error ({} queries, {} triples, {} thread(s)): \
         statistics median {} / max {}, uniform median {} / max {}.",
        queries.len(),
        cluster.graph().len(),
        threads,
        fmt_f64(median(&stats_q)),
        fmt_f64(max(&stats_q)),
        fmt_f64(median(&uniform_q)),
        fmt_f64(max(&uniform_q)),
    );
}

/// Parses `--profile [PATH]` (`BENCH_profile_trace.json` when no path
/// follows the flag).
fn profile_path_from_args(args: &[String]) -> Option<String> {
    let position = args.iter().position(|a| a == "--profile")?;
    Some(
        args.get(position + 1)
            .filter(|v| !v.starts_with("--"))
            .cloned()
            .unwrap_or_else(|| "BENCH_profile_trace.json".to_string()),
    )
}

/// Runs every LUBM query once profiled and once not on `executor`, asserts
/// the answers are bit-identical, and writes the profiles to `path` as
/// Chrome-trace JSON.
fn write_profile_trace(path: &str, csq: &Csq, executor: &Executor) {
    let mut profiles = Vec::new();
    for query in lubm_queries::lubm_queries() {
        let (_, chosen, _) = csq.plan(&query);
        let physical = translate(&chosen, csq.cluster().graph());
        let unprofiled = executor.execute(&physical);
        let profiled = executor.execute_profiled(&physical);
        assert_eq!(
            unprofiled.results,
            profiled.results,
            "{}: profiling changed the answer set",
            query.name()
        );
        let root = profiled
            .profile
            .expect("profiled execution returns a span tree");
        profiles.push(cliquesquare_obs::QueryProfile {
            query: query.name().to_string(),
            threads: executor.runtime().threads(),
            total_wall_seconds: root.wall_seconds,
            root,
        });
    }
    std::fs::write(path, cliquesquare_obs::chrome_trace(&profiles)).expect("write profile trace");
    println!(
        "\nWrote Chrome-trace profile of {} queries to {path} \
         (open in chrome://tracing or Perfetto).",
        profiles.len()
    );
}

/// Prints the counter regression table — the current run's
/// `sorts_performed` / `join_inputs_resorted` / `peak_rows` counters next to
/// the committed snapshot's — and returns `true` when any query regressed
/// (sorted more, re-sorted a join input, or held a larger peak intermediate
/// than the baseline recorded). CI gates on the exit status this feeds:
/// deterministic counters, so any growth is a real plan/execution change,
/// not machine noise.
///
/// A baseline that was recorded by a different benchmark (`report_load`'s
/// multi-scale snapshots also carry `"name"`-bearing object lines), at a
/// different dataset scale, or without any parseable query entry is
/// **skipped with a note** rather than mis-diffed or panicked on.
fn print_baseline_diff(path: &str, dataset_triples: usize, current: &[SnapshotQuery]) -> bool {
    match read_snapshot_meta(path) {
        Ok(meta) => {
            if meta.benchmark.as_deref().is_some_and(|b| b != "execution") {
                println!(
                    "\n(no baseline diff: {path} records the {:?} benchmark, not execution)",
                    meta.benchmark.unwrap_or_default()
                );
                return false;
            }
            if meta
                .dataset_triples
                .is_some_and(|recorded| recorded != dataset_triples)
            {
                println!(
                    "\n(no baseline diff: {path} was recorded at {} triples, this run has {}; \
                     rerun at the recorded scale or re-record with --snapshot)",
                    meta.dataset_triples.unwrap_or_default(),
                    dataset_triples
                );
                return false;
            }
        }
        Err(error) => {
            println!("\n(no baseline diff: could not read {path}: {error})");
            return false;
        }
    }
    let baseline = match read_execution_snapshot(path) {
        Ok(queries) => queries,
        Err(error) => {
            println!("\n(no baseline diff: could not read {path}: {error})");
            return false;
        }
    };
    if baseline.is_empty() {
        println!("\n(no baseline diff: {path} contains no query entries)");
        return false;
    }
    let lookup = |name: &str| baseline.iter().find(|b| b.name == name);
    let fmt_count = |value: Option<u64>| value.map_or("-".to_string(), |v| v.to_string());
    let fmt_delta = |now: u64, then: Option<u64>| match then {
        Some(then) => format!("{:+}", now as i64 - then as i64),
        None => "-".to_string(),
    };
    let mut rows = Vec::new();
    let (mut sorts_now, mut sorts_then) = (0u64, 0u64);
    let (mut resorts_now, mut resorts_then) = (0u64, 0u64);
    let mut complete = true;
    let mut regressed = false;
    for q in current {
        let base = lookup(&q.name);
        let base_sorts = base.and_then(|b| b.sorts_performed);
        let base_resorts = base.and_then(|b| b.join_inputs_resorted);
        let base_peak = base.and_then(|b| b.peak_rows);
        let base_qerr = base.and_then(|b| b.median_q_error);
        sorts_now += q.sorts_performed;
        resorts_now += q.join_inputs_resorted;
        match (base_sorts, base_resorts) {
            (Some(s), Some(r)) => {
                sorts_then += s;
                resorts_then += r;
            }
            _ => complete = false,
        }
        // Gate per query: more sorts, a re-sorted join input, a larger peak
        // intermediate, or a meaningfully worse median estimator q-error
        // (>10% over the recorded baseline; the q-error gate only applies
        // when both this run and the baseline measured cardinalities).
        regressed |= base_sorts.is_some_and(|s| q.sorts_performed > s)
            || base_resorts.is_some_and(|r| q.join_inputs_resorted > r)
            || base_peak.is_some_and(|p| q.peak_rows > p)
            || matches!(
                (q.median_q_error, base_qerr),
                (Some(now), Some(then)) if now > then * 1.10
            );
        let fmt_qerr = |value: Option<f64>| value.map_or("-".to_string(), fmt_f64);
        rows.push(vec![
            q.name.clone(),
            fmt_count(base_sorts),
            q.sorts_performed.to_string(),
            fmt_delta(q.sorts_performed, base_sorts),
            fmt_count(base_resorts),
            q.join_inputs_resorted.to_string(),
            fmt_delta(q.join_inputs_resorted, base_resorts),
            fmt_count(base_peak),
            q.peak_rows.to_string(),
            fmt_delta(q.peak_rows, base_peak),
            fmt_qerr(base_qerr),
            fmt_qerr(q.median_q_error),
            base.and_then(|b| b.wall_sequential_ms)
                .map_or("-".to_string(), fmt_f64),
            fmt_f64(q.wall_sequential_ms),
        ]);
    }
    println!("\n== Counter regression vs {path} ==");
    println!(
        "{}",
        table(
            &[
                "Query",
                "sorts(base)",
                "sorts(now)",
                "Δ",
                "resorts(base)",
                "resorts(now)",
                "Δ",
                "peak(base)",
                "peak(now)",
                "Δ",
                "qerr(base)",
                "qerr(now)",
                "wall base (ms)",
                "wall now (ms)",
            ],
            &rows
        )
    );
    if complete {
        println!(
            "Totals: sorts {sorts_then} -> {sorts_now} ({:+}), join inputs resorted \
             {resorts_then} -> {resorts_now} ({:+}).",
            sorts_now as i64 - sorts_then as i64,
            resorts_now as i64 - resorts_then as i64
        );
    } else {
        println!("(baseline predates some counters: '-' entries do not gate)");
    }
    regressed
}
