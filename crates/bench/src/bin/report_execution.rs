//! Reproduces **Figure 20**: simulated execution time of the plan chosen by
//! the cost model among the CliqueSquare-MSC plans, versus the best binary
//! bushy plan and the best binary linear plan, for the 14 LUBM queries.
//! Next to each query we print the paper-style annotation
//! `Qi(#tps | jobs_MSC jobs_bushy jobs_linear)` where `M` denotes a map-only
//! job.
//!
//! Usage: `cargo run --release -p cliquesquare-bench --bin report_execution`

use cliquesquare_baselines::BinaryPlanner;
use cliquesquare_bench::{fmt_f64, lubm_cluster, report_scale, table};
use cliquesquare_core::LogicalPlan;
use cliquesquare_engine::csq::{Csq, CsqConfig};
use cliquesquare_engine::Executor;
use cliquesquare_querygen::lubm_queries;

fn main() {
    let cluster = lubm_cluster(report_scale());
    println!(
        "== Figure 20: MSC plans vs best binary bushy / linear plans ==\ndataset: {} triples on {} nodes\n",
        cluster.graph().len(),
        cluster.nodes()
    );
    let csq = Csq::new(cluster.clone(), CsqConfig::default());
    let planner = BinaryPlanner::new(cluster.graph());
    let executor = Executor::new(&cluster);

    let mut rows = Vec::new();
    for query in lubm_queries::lubm_queries() {
        let report = csq.run(&query);
        let run_binary = |plan: Option<LogicalPlan>| {
            plan.map(|p| executor.execute_logical(&p)).map(|out| {
                (
                    out.job_log.descriptor(),
                    out.simulated_seconds,
                    out.distinct_count(),
                )
            })
        };
        let bushy = run_binary(planner.best_bushy(&query)).expect("bushy plan");
        let linear = run_binary(planner.best_linear(&query)).expect("linear plan");
        assert_eq!(
            report.result_count,
            bushy.2,
            "{}: answer mismatch",
            query.name()
        );
        assert_eq!(
            report.result_count,
            linear.2,
            "{}: answer mismatch",
            query.name()
        );

        rows.push(vec![
            format!(
                "{}({}|{}{}{})",
                query.name(),
                query.len(),
                report.job_descriptor,
                bushy.0,
                linear.0
            ),
            report.plan_height.to_string(),
            fmt_f64(report.simulated_seconds),
            fmt_f64(bushy.1),
            fmt_f64(linear.1),
            fmt_f64(bushy.1 / report.simulated_seconds),
            fmt_f64(linear.1 / report.simulated_seconds),
            report.result_count.to_string(),
        ]);
    }
    println!(
        "{}",
        table(
            &[
                "Query(#tps|jobs)",
                "MSC height",
                "MSC-Best (s)",
                "Best Bushy (s)",
                "Best Linear (s)",
                "bushy/MSC",
                "linear/MSC",
                "|Q|",
            ],
            &rows
        )
    );
    println!("Expected shape (paper): MSC plans are fastest for every query, up to ~2x vs bushy and up to ~16x vs linear.");
}
