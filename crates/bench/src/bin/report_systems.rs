//! Reproduces **Figure 21**: simulated query evaluation time of CSQ
//! (CliqueSquare-MSC over our MapReduce engine) versus SHAPE-2f and H2RDF+,
//! on the 14 LUBM queries, split into selective and non-selective groups as
//! in the paper.
//!
//! The `CSQ wall (ms)` column is the *measured* wall-clock execution time of
//! the CSQ plan on this machine, using the runtime selected by `--threads N`
//! (default: `CSQ_THREADS` or sequential); the `(s)` columns are simulated
//! by the cost model and independent of the thread count.
//!
//! Usage: `cargo run --release -p cliquesquare-bench --bin report_systems [-- --threads N]`

use cliquesquare_baselines::{H2RdfSystem, ShapeSystem, SystemRunReport};
use cliquesquare_bench::{fmt_f64, lubm_cluster, report_scale, runtime_from_args, table};
use cliquesquare_engine::csq::{Csq, CsqConfig};
use cliquesquare_querygen::lubm_queries::{non_selective_queries, selective_queries};
use cliquesquare_sparql::BgpQuery;

fn run_group(
    title: &str,
    queries: &[BgpQuery],
    csq: &Csq,
    shape: &ShapeSystem,
    h2rdf: &H2RdfSystem,
) {
    let mut rows = Vec::new();
    let mut totals = [0.0f64; 3];
    for query in queries {
        let csq_report = csq.run(query);
        let shape_report: SystemRunReport = shape.run(query);
        let h2rdf_report: SystemRunReport = h2rdf.run(query);
        assert_eq!(
            csq_report.result_count,
            shape_report.result_count,
            "{}",
            query.name()
        );
        assert_eq!(
            csq_report.result_count,
            h2rdf_report.result_count,
            "{}",
            query.name()
        );
        totals[0] += csq_report.simulated_seconds;
        totals[1] += shape_report.simulated_seconds;
        totals[2] += h2rdf_report.simulated_seconds;
        rows.push(vec![
            format!(
                "{}({}|{}{}{})",
                query.name(),
                query.len(),
                csq_report.job_descriptor,
                shape_report.job_descriptor,
                h2rdf_report.job_descriptor
            ),
            fmt_f64(csq_report.simulated_seconds),
            fmt_f64(shape_report.simulated_seconds),
            fmt_f64(h2rdf_report.simulated_seconds),
            fmt_f64(csq_report.wall_seconds * 1e3),
            csq_report.result_count.to_string(),
        ]);
    }
    rows.push(vec![
        "TOTAL".to_string(),
        fmt_f64(totals[0]),
        fmt_f64(totals[1]),
        fmt_f64(totals[2]),
        String::new(),
        String::new(),
    ]);
    println!("{title}");
    println!(
        "{}",
        table(
            &[
                "Query(#tps|jobs)",
                "CSQ (s)",
                "SHAPE-2f (s)",
                "H2RDF+ (s)",
                "CSQ wall (ms)",
                "|Q|"
            ],
            &rows
        )
    );
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let runtime = runtime_from_args(&args);
    let cluster = lubm_cluster(report_scale());
    println!(
        "== Figure 21: CSQ vs SHAPE-2f vs H2RDF+ ==\n\
         dataset: {} triples on {} nodes; CSQ wall-clock on {} thread(s)\n",
        cluster.graph().len(),
        cluster.nodes(),
        runtime.threads()
    );
    let csq = Csq::new(
        cluster.clone(),
        CsqConfig::default().with_threads(runtime.threads()),
    );
    let shape = ShapeSystem::new(&cluster);
    let h2rdf = H2RdfSystem::new(&cluster);

    run_group(
        "Selective queries",
        &selective_queries(),
        &csq,
        &shape,
        &h2rdf,
    );
    run_group(
        "Non-selective queries",
        &non_selective_queries(),
        &csq,
        &shape,
        &h2rdf,
    );
    println!(
        "Expected shape (paper): SHAPE wins on its PWOC selective queries (Q2,Q4,Q9,Q10); \
         CSQ wins or ties elsewhere and beats H2RDF+ by 1-2 orders of magnitude on non-selective queries."
    );
}
