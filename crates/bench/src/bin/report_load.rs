//! Bulk-load throughput report: the parallel load pipeline
//! (`cliquesquare_mapreduce::load::BulkLoader`) versus the sequential
//! ingest path, stage by stage.
//!
//! The paper's preprocessing (Section 5.1) partitions LUBM10k with a
//! MapReduce job before any query runs; partitioned RDF stores in general
//! pay a heavy load/encode phase up front. This report measures that phase
//! for the reproduction: LUBM generation (one task per university), N-Triples
//! parsing (line-aligned chunks), sharded dictionary encoding + partitioned
//! merge, parallel index build, and the replicated partition build — each
//! once on the sequential runtime and once on `--threads N`, asserting
//! **bit-identical** results before reporting speedups.
//!
//! Usage: `cargo run --release -p cliquesquare-bench --bin report_load
//! [-- --threads N] [--scale U | --scale A,B,C] [--nodes M]
//! [--snapshot [PATH]] [--memory-smoke]`
//!
//! * `--scale U` runs the classic single-scale stage report.
//! * `--scale A,B,C` (comma-separated university counts) runs the **scaling
//!   sweep**: one streaming load per scale, per-scale rows written to
//!   `BENCH_load.json` with `--snapshot` (the multi-scale array format;
//!   `read_load_snapshot` still reads old single-object recordings).
//! * `--memory-smoke` is the CI gate for the bounded-memory streaming
//!   contract: it loads ~200k triples and **exits nonzero** if the peak
//!   in-flight decoded bytes exceed a hard ceiling or stop being sublinear
//!   in the bytes parsed.

use cliquesquare_bench::{
    fmt_f64, runtime_from_args, scale_from_args, snapshot_path_with_default, table,
    write_load_scale_snapshot, write_load_snapshot, LoadScaleEntry, LoadStage,
};
use cliquesquare_mapreduce::load::{BulkLoader, LoadOptions, LoadReport};
use cliquesquare_mapreduce::Runtime;
use cliquesquare_rdf::{ntriples, LubmGenerator, LubmScale};

/// Load repetitions for the single-scale report (best-of, damping
/// scheduler noise).
const REPEATS: usize = 3;

/// Hard ceiling on peak in-flight decoded bytes for `--memory-smoke`:
/// far above one chunk of the smoke dataset, far below holding all of it.
const SMOKE_PEAK_CEILING: u64 = 64 * 1024 * 1024;

/// The per-stage seconds of `report`, in pipeline order.
fn stages_of(report: &LoadReport) -> [(&'static str, f64); 5] {
    [
        ("input", report.input_seconds),
        ("encode", report.encode_seconds),
        ("merge", report.merge_seconds),
        ("index", report.index_seconds),
        ("partition", report.partition_seconds),
    ]
}

/// Runs `load` `repeats` times and keeps the run with the best total.
fn best_of<F: Fn() -> LoadReport>(repeats: usize, load: F) -> LoadReport {
    let mut best = load();
    for _ in 1..repeats.max(1) {
        let next = load();
        if next.total_seconds() < best.total_seconds() {
            best = next;
        }
    }
    best
}

/// The comma-separated university counts of `--scale A,B,C`, if the flag
/// holds a list (a single number keeps the classic single-scale mode).
fn scale_list_from_args(args: &[String]) -> Option<Vec<usize>> {
    let mut iter = args.iter();
    let value = loop {
        let arg = iter.next()?;
        if arg == "--scale" {
            break iter.next()?.as_str();
        }
        if let Some(value) = arg.strip_prefix("--scale=") {
            break value;
        }
    };
    if !value.contains(',') {
        return None;
    }
    let scales: Vec<usize> = value
        .split(',')
        .filter_map(|part| part.trim().parse::<usize>().ok())
        .map(|u| u.max(1))
        .collect();
    (!scales.is_empty()).then_some(scales)
}

fn entry_of(report: &LoadReport) -> LoadScaleEntry {
    LoadScaleEntry {
        dataset_triples: report.triples,
        distinct_terms: report.distinct_terms,
        chunks: report.chunks,
        merge_partitions: report.merge_partitions,
        input_seconds: report.input_seconds,
        encode_seconds: report.encode_seconds,
        merge_seconds: report.merge_seconds,
        index_seconds: report.index_seconds,
        partition_seconds: report.partition_seconds,
        total_seconds: report.total_seconds(),
        triples_per_second: report.triples_per_second(),
        peak_inflight_bytes: report.peak_inflight_bytes,
        parsed_bytes: report.parsed_bytes,
    }
}

/// The `--scale A,B,C` sweep: one streaming LUBM load per scale, repeats
/// shrinking as the dataset grows, bit-identity asserted at the smallest
/// scale, per-scale rows recorded with `--snapshot`.
fn scale_sweep(args: &[String], runtime: Runtime, nodes: usize, universities: &[usize]) {
    let options = LoadOptions::with_nodes(nodes);
    let loader = BulkLoader::new(runtime.clone());

    // Correctness gate at the smallest scale: the sweep loader must be
    // bit-identical to the sequential path before any timing is believed.
    let smallest = LubmScale::with_universities(*universities.iter().min().expect("non-empty"));
    let gate = BulkLoader::sequential().load_lubm(smallest, &options);
    let gate_parallel = loader.load_lubm(smallest, &options);
    assert_eq!(
        gate.graph, gate_parallel.graph,
        "sweep loader changed the graph at the gate scale"
    );
    assert_eq!(
        gate.store, gate_parallel.store,
        "sweep loader changed the partitioned store at the gate scale"
    );

    println!(
        "== Bulk-load scaling sweep: streaming pipeline + partitioned merge ==\n\
         {} nodes; {} thread(s); bit-identity gated at {} universities\n",
        nodes,
        runtime.threads(),
        smallest.universities
    );

    let mut entries: Vec<LoadScaleEntry> = Vec::new();
    let mut rows = Vec::new();
    for &u in universities {
        let scale = LubmScale::with_universities(u);
        let probe = loader.load_lubm(scale, &options);
        let repeats = match probe.report.triples {
            t if t < 100_000 => 3,
            t if t < 1_000_000 => 2,
            _ => 1,
        };
        let report = if repeats > 1 {
            best_of(repeats - 1, || loader.load_lubm(scale, &options).report)
                .min_by_total(probe.report)
        } else {
            probe.report
        };
        let entry = entry_of(&report);
        rows.push(vec![
            u.to_string(),
            entry.dataset_triples.to_string(),
            entry.chunks.to_string(),
            entry.merge_partitions.to_string(),
            fmt_f64(entry.input_seconds * 1e3),
            fmt_f64(entry.encode_seconds * 1e3),
            fmt_f64(entry.merge_seconds * 1e3),
            fmt_f64(entry.index_seconds * 1e3),
            fmt_f64(entry.partition_seconds * 1e3),
            fmt_f64(entry.total_seconds * 1e3),
            fmt_f64(entry.triples_per_second),
            fmt_f64(entry.peak_inflight_bytes as f64 / (1024.0 * 1024.0)),
            fmt_f64(entry.parsed_bytes as f64 / (1024.0 * 1024.0)),
        ]);
        entries.push(entry);
    }
    println!(
        "{}",
        table(
            &[
                "univ",
                "triples",
                "chunks",
                "merge parts",
                "input (ms)",
                "encode (ms)",
                "merge (ms)",
                "index (ms)",
                "partition (ms)",
                "total (ms)",
                "triples/s",
                "peak MiB",
                "parsed MiB",
            ],
            &rows
        )
    );
    println!(
        "`peak MiB` is the high-water mark of decoded triples simultaneously \
         in flight (the streaming gauge); `parsed MiB` is everything that \
         passed through. Sublinear peak vs parsed is the bounded-memory \
         contract; `merge parts` > 1 means the partitioned dictionary merge \
         ran as parallel task waves."
    );

    if let Some(path) = snapshot_path_with_default(args, "BENCH_load.json") {
        write_load_scale_snapshot(
            &path,
            "LUBM scaling sweep",
            nodes,
            runtime.threads(),
            &entries,
        )
        .expect("write load snapshot");
        println!("\nWrote {}-scale load snapshot to {path}.", entries.len());
    }
}

/// The `--memory-smoke` CI gate: load ~200k triples through the streaming
/// pipeline and fail hard if the peak in-flight decoded bytes breach the
/// ceiling or stop being sublinear in the parsed bytes.
fn memory_smoke(args: &[String], runtime: Runtime, nodes: usize) {
    let scale = scale_from_args(args, LubmScale::with_universities(120));
    let text = ntriples::serialize(&LubmGenerator::new(scale).generate());
    let loader = BulkLoader::new(runtime.clone());
    let output = loader
        .load_ntriples(
            &text,
            &LoadOptions {
                nodes,
                chunks: Some((runtime.threads() * 8).max(16)),
            },
        )
        .expect("smoke dataset parses");
    let report = &output.report;
    println!(
        "== Bounded-memory load smoke ==\n\
         {} triples, {} chunks, {} thread(s): peak in-flight {} bytes, \
         parsed {} bytes ({:.1}% held at peak), {} scratch allocations",
        report.triples,
        report.chunks,
        report.threads,
        report.peak_inflight_bytes,
        report.parsed_bytes,
        report.peak_inflight_bytes as f64 / report.parsed_bytes.max(1) as f64 * 100.0,
        report.scratch_allocations,
    );
    let mut failed = false;
    if report.peak_inflight_bytes > SMOKE_PEAK_CEILING {
        eprintln!(
            "error: peak in-flight bytes {} exceed the {} hard ceiling",
            report.peak_inflight_bytes, SMOKE_PEAK_CEILING
        );
        failed = true;
    }
    if report.peak_inflight_bytes * 4 > report.parsed_bytes {
        eprintln!(
            "error: peak in-flight bytes {} are not sublinear in parsed bytes {} \
             (the loader is accumulating chunks instead of streaming)",
            report.peak_inflight_bytes, report.parsed_bytes
        );
        failed = true;
    }
    if failed {
        std::process::exit(1);
    }
    println!("PASS: streaming load held <= 1/4 of the parsed bytes in flight.");
}

trait MinByTotal {
    fn min_by_total(self, other: LoadReport) -> LoadReport;
}

impl MinByTotal for LoadReport {
    fn min_by_total(self, other: LoadReport) -> LoadReport {
        if self.total_seconds() <= other.total_seconds() {
            self
        } else {
            other
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let runtime = runtime_from_args(&args);
    let nodes = args
        .iter()
        .position(|a| a == "--nodes")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse::<usize>().ok())
        .unwrap_or(7);

    if args.iter().any(|a| a == "--memory-smoke") {
        memory_smoke(&args, runtime, nodes);
        return;
    }
    if let Some(universities) = scale_list_from_args(&args) {
        scale_sweep(&args, runtime, nodes, &universities);
        return;
    }

    let scale = scale_from_args(&args, LubmScale::with_universities(12));
    let options = LoadOptions::with_nodes(nodes);

    let sequential = BulkLoader::sequential();
    let parallel = BulkLoader::new(runtime.clone());

    // Correctness gate: the parallel load must be bit-identical to the
    // sequential one (same TermIds, same indexes, same file placement).
    let seq_lubm = sequential.load_lubm(scale, &options);
    let par_lubm = parallel.load_lubm(scale, &options);
    assert_eq!(
        seq_lubm.graph, par_lubm.graph,
        "parallel LUBM load changed the graph"
    );
    assert_eq!(
        seq_lubm.store, par_lubm.store,
        "parallel LUBM load changed the partitioned store"
    );
    let text = ntriples::serialize(&seq_lubm.graph);
    let seq_nt = sequential
        .load_ntriples(&text, &options)
        .expect("serialized dataset parses");
    let par_nt = parallel
        .load_ntriples(&text, &options)
        .expect("serialized dataset parses");
    assert_eq!(
        seq_nt.graph, par_nt.graph,
        "parallel N-Triples load changed the graph"
    );
    assert_eq!(
        seq_nt.store, par_nt.store,
        "parallel N-Triples load changed the partitioned store"
    );
    assert_eq!(
        seq_nt.graph, seq_lubm.graph,
        "N-Triples round-trip changed the graph"
    );

    println!(
        "== Bulk load: sharded dictionary encoding + parallel partition build ==\n\
         dataset: {} triples, {} distinct terms, {} nodes; {} thread(s), {} chunk(s), best of {}\n",
        seq_lubm.report.triples,
        seq_lubm.report.distinct_terms,
        nodes,
        runtime.threads(),
        par_lubm.report.chunks,
        REPEATS
    );

    let mut snapshot_stages: Vec<LoadStage> = Vec::new();
    for (title, seq_report, par_report) in [
        (
            "LUBM generate",
            best_of(REPEATS, || sequential.load_lubm(scale, &options).report),
            best_of(REPEATS, || parallel.load_lubm(scale, &options).report),
        ),
        (
            "N-Triples parse",
            best_of(REPEATS, || {
                sequential
                    .load_ntriples(&text, &options)
                    .expect("parses")
                    .report
            }),
            best_of(REPEATS, || {
                parallel
                    .load_ntriples(&text, &options)
                    .expect("parses")
                    .report
            }),
        ),
    ] {
        let mut rows = Vec::new();
        for ((name, seq_s), (_, par_s)) in stages_of(&seq_report)
            .into_iter()
            .zip(stages_of(&par_report))
        {
            rows.push(vec![
                name.to_string(),
                fmt_f64(seq_s * 1e3),
                fmt_f64(par_s * 1e3),
                fmt_f64(seq_s / par_s.max(1e-9)),
            ]);
            if title == "N-Triples parse" {
                snapshot_stages.push(LoadStage {
                    name: name.to_string(),
                    sequential_seconds: seq_s,
                    parallel_seconds: par_s,
                });
            }
        }
        rows.push(vec![
            "total".to_string(),
            fmt_f64(seq_report.total_seconds() * 1e3),
            fmt_f64(par_report.total_seconds() * 1e3),
            fmt_f64(seq_report.total_seconds() / par_report.total_seconds().max(1e-9)),
        ]);
        println!(
            "-- {title}: {} / {} triples/s (1T / NT) --",
            fmt_f64(seq_report.triples_per_second()),
            fmt_f64(par_report.triples_per_second())
        );
        println!(
            "{}",
            table(&["stage", "1T (ms)", "NT (ms)", "speedup"], &rows)
        );
    }
    println!(
        "The `merge` stage runs as hash-partitioned task waves on parallel \
         runtimes (serial single-pass otherwise) and assigns final ids in \
         first-occurrence order either way; every other stage runs as task \
         waves too. Both loaders are asserted bit-identical before any \
         timing is reported."
    );

    if let Some(path) = snapshot_path_with_default(&args, "BENCH_load.json") {
        write_load_snapshot(
            &path,
            "LUBM N-Triples load",
            seq_nt.report.triples,
            seq_nt.report.distinct_terms,
            nodes,
            runtime.threads(),
            par_nt.report.chunks,
            &snapshot_stages,
        )
        .expect("write load snapshot");
        println!("\nWrote load snapshot to {path}.");
    }
}
