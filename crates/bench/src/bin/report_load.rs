//! Bulk-load throughput report: the parallel load pipeline
//! (`cliquesquare_mapreduce::load::BulkLoader`) versus the sequential
//! ingest path, stage by stage.
//!
//! The paper's preprocessing (Section 5.1) partitions LUBM10k with a
//! MapReduce job before any query runs; partitioned RDF stores in general
//! pay a heavy load/encode phase up front. This report measures that phase
//! for the reproduction: LUBM generation (one task per university), N-Triples
//! parsing (line-aligned chunks), sharded dictionary encoding + ordered
//! merge, parallel index build, and the replicated partition build — each
//! once on the sequential runtime and once on `--threads N`, asserting
//! **bit-identical** results before reporting speedups.
//!
//! Usage: `cargo run --release -p cliquesquare-bench --bin report_load
//! [-- --threads N] [--scale U] [--nodes M] [--snapshot [PATH]]`
//! (`--snapshot` writes `BENCH_load.json`, the recorded load-throughput
//! artifact; CI uploads it without gating on it.)

use cliquesquare_bench::{
    fmt_f64, runtime_from_args, scale_from_args, snapshot_path_with_default, table,
    write_load_snapshot, LoadStage,
};
use cliquesquare_mapreduce::load::{BulkLoader, LoadOptions, LoadReport};
use cliquesquare_rdf::{ntriples, LubmScale};

/// Load repetitions (best-of, damping scheduler noise).
const REPEATS: usize = 3;

/// The per-stage seconds of `report`, in pipeline order.
fn stages_of(report: &LoadReport) -> [(&'static str, f64); 5] {
    [
        ("input", report.input_seconds),
        ("encode", report.encode_seconds),
        ("merge", report.merge_seconds),
        ("index", report.index_seconds),
        ("partition", report.partition_seconds),
    ]
}

/// Runs `load` `REPEATS` times and keeps the run with the best total.
fn best_of<F: Fn() -> LoadReport>(load: F) -> LoadReport {
    let mut best = load();
    for _ in 1..REPEATS {
        let next = load();
        if next.total_seconds() < best.total_seconds() {
            best = next;
        }
    }
    best
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let runtime = runtime_from_args(&args);
    let scale = scale_from_args(&args, LubmScale::with_universities(12));
    let nodes = args
        .iter()
        .position(|a| a == "--nodes")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse::<usize>().ok())
        .unwrap_or(7);
    let options = LoadOptions::with_nodes(nodes);

    let sequential = BulkLoader::sequential();
    let parallel = BulkLoader::new(runtime.clone());

    // Correctness gate: the parallel load must be bit-identical to the
    // sequential one (same TermIds, same indexes, same file placement).
    let seq_lubm = sequential.load_lubm(scale, &options);
    let par_lubm = parallel.load_lubm(scale, &options);
    assert_eq!(
        seq_lubm.graph, par_lubm.graph,
        "parallel LUBM load changed the graph"
    );
    assert_eq!(
        seq_lubm.store, par_lubm.store,
        "parallel LUBM load changed the partitioned store"
    );
    let text = ntriples::serialize(&seq_lubm.graph);
    let seq_nt = sequential
        .load_ntriples(&text, &options)
        .expect("serialized dataset parses");
    let par_nt = parallel
        .load_ntriples(&text, &options)
        .expect("serialized dataset parses");
    assert_eq!(
        seq_nt.graph, par_nt.graph,
        "parallel N-Triples load changed the graph"
    );
    assert_eq!(
        seq_nt.store, par_nt.store,
        "parallel N-Triples load changed the partitioned store"
    );
    assert_eq!(
        seq_nt.graph, seq_lubm.graph,
        "N-Triples round-trip changed the graph"
    );

    println!(
        "== Bulk load: sharded dictionary encoding + parallel partition build ==\n\
         dataset: {} triples, {} distinct terms, {} nodes; {} thread(s), {} chunk(s), best of {}\n",
        seq_lubm.report.triples,
        seq_lubm.report.distinct_terms,
        nodes,
        runtime.threads(),
        par_lubm.report.chunks,
        REPEATS
    );

    let mut snapshot_stages: Vec<LoadStage> = Vec::new();
    for (title, seq_report, par_report) in [
        (
            "LUBM generate",
            best_of(|| sequential.load_lubm(scale, &options).report),
            best_of(|| parallel.load_lubm(scale, &options).report),
        ),
        (
            "N-Triples parse",
            best_of(|| {
                sequential
                    .load_ntriples(&text, &options)
                    .expect("parses")
                    .report
            }),
            best_of(|| {
                parallel
                    .load_ntriples(&text, &options)
                    .expect("parses")
                    .report
            }),
        ),
    ] {
        let mut rows = Vec::new();
        for ((name, seq_s), (_, par_s)) in stages_of(&seq_report)
            .into_iter()
            .zip(stages_of(&par_report))
        {
            rows.push(vec![
                name.to_string(),
                fmt_f64(seq_s * 1e3),
                fmt_f64(par_s * 1e3),
                fmt_f64(seq_s / par_s.max(1e-9)),
            ]);
            if title == "N-Triples parse" {
                snapshot_stages.push(LoadStage {
                    name: name.to_string(),
                    sequential_seconds: seq_s,
                    parallel_seconds: par_s,
                });
            }
        }
        rows.push(vec![
            "total".to_string(),
            fmt_f64(seq_report.total_seconds() * 1e3),
            fmt_f64(par_report.total_seconds() * 1e3),
            fmt_f64(seq_report.total_seconds() / par_report.total_seconds().max(1e-9)),
        ]);
        println!(
            "-- {title}: {} / {} triples/s (1T / NT) --",
            fmt_f64(seq_report.triples_per_second()),
            fmt_f64(par_report.triples_per_second())
        );
        println!(
            "{}",
            table(&["stage", "1T (ms)", "NT (ms)", "speedup"], &rows)
        );
    }
    println!(
        "The `merge` stage is inherently sequential (it assigns final ids in \
         first-occurrence order over distinct terms) but is pre-sized so it \
         never rehashes; every other stage runs as task waves. Both loaders \
         are asserted bit-identical before any timing is reported."
    );

    if let Some(path) = snapshot_path_with_default(&args, "BENCH_load.json") {
        write_load_snapshot(
            &path,
            "LUBM N-Triples load",
            seq_nt.report.triples,
            seq_nt.report.distinct_terms,
            nodes,
            runtime.threads(),
            par_nt.report.chunks,
            &snapshot_stages,
        )
        .expect("write load snapshot");
        println!("\nWrote load snapshot to {path}.");
    }
}
