//! Closed-loop concurrent-serving benchmark: N client threads fire the LUBM
//! query mix at one shared [`QueryService`] (one persistent multi-job
//! scheduler over one immutable store snapshot) and we record p50/p99
//! latency and queries/s at each client count. This is the serving
//! trajectory headline: throughput must scale with client threads while
//! every answer stays bit-identical to the solo single-job path.
//!
//! ```text
//! report_serving [--threads N|auto] [--scale U] [--clients 1,2,4,8]
//!                [--rounds R] [--smoke] [--snapshot [PATH]]
//! ```
//!
//! `--threads` sets the serving scheduler's worker count (default 4;
//! submitting clients also help drain their own job, so throughput scales
//! with clients even on a small pool). `--smoke` shrinks everything for CI:
//! tiny dataset, client levels {1, 2}, one round.
//!
//! Planning and execution walls are reported *separately* (an earlier
//! version folded planning into the single latency number): each level shows
//! its median planning and execution slices plus the template-plan-cache hit
//! rate, and a solo cold-vs-warm pass up front quantifies what a cache hit
//! saves over full optimization.

use cliquesquare_bench::{
    lubm_cluster, percentile_ms, scale_from_args, snapshot_path_with_default, table,
    write_serving_snapshot, PlanningSummary, ServingLevel,
};
use cliquesquare_mapreduce::Runtime;
use cliquesquare_obs::{Gauge, Histogram, LATENCY_SECONDS_BUCKETS};
use cliquesquare_querygen::lubm_queries::lubm_queries;
use cliquesquare_rdf::LubmScale;
use cliquesquare_server::{QueryAnswer, QueryService};
use std::sync::Arc;
use std::time::Instant;

/// Handle to the scheduler's task-wait histogram in the global registry
/// (same name/help as the scheduler registers, so this is the same series).
fn queue_wait_histogram() -> std::sync::Arc<Histogram> {
    cliquesquare_obs::global().histogram(
        "csq_scheduler_task_wait_seconds",
        "Seconds a task waited between enqueue and dequeue",
        &[],
        LATENCY_SECONDS_BUCKETS,
    )
}

/// Handle to the scheduler's queue-depth high-water gauge.
fn queue_depth_peak_gauge() -> std::sync::Arc<Gauge> {
    cliquesquare_obs::global().gauge(
        "csq_scheduler_queue_depth_peak",
        "High-water mark of the scheduler queue depth",
        &[],
    )
}

fn flag_value<'a>(args: &'a [String], flag: &str) -> Option<&'a str> {
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        if arg == flag {
            return iter.next().map(String::as_str);
        }
        if let Some(value) = arg.strip_prefix(flag).and_then(|v| v.strip_prefix('=')) {
            return Some(value);
        }
    }
    None
}

/// Strips the fields that legitimately vary run to run (wall clock), leaving
/// everything that must be bit-identical across concurrency levels.
fn stable_answer(answer: &QueryAnswer) -> (String, Vec<String>, Vec<Vec<String>>, usize, String) {
    (
        answer.query.clone(),
        answer.variables.clone(),
        answer.rows.clone(),
        answer.total_rows,
        answer.job_descriptor.clone(),
    )
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let worker_threads =
        match Runtime::try_from_option(flag_value(&args, "--threads").unwrap_or("4")) {
            Ok(runtime) => runtime.threads(),
            Err(error) => {
                eprintln!("error: invalid --threads: {error}");
                std::process::exit(2);
            }
        };
    let scale = if smoke {
        LubmScale::tiny()
    } else {
        scale_from_args(&args, LubmScale::with_universities(5))
    };
    let client_levels: Vec<usize> = match flag_value(&args, "--clients") {
        Some(list) => list
            .split(',')
            .map(|v| v.trim().parse().expect("--clients takes e.g. 1,2,4,8"))
            .filter(|&c| c >= 1)
            .collect(),
        None if smoke => vec![1, 2],
        None => vec![1, 2, 4, 8],
    };
    let rounds: usize = flag_value(&args, "--rounds")
        .map(|v| v.parse().expect("--rounds takes a positive integer"))
        .unwrap_or(if smoke { 1 } else { 3 })
        .max(1);

    let cluster = lubm_cluster(scale);
    let service = Arc::new(QueryService::new(
        cluster.clone(),
        Runtime::serving(worker_threads),
    ));
    let queries = lubm_queries();
    println!(
        "== Concurrent serving: closed-loop LUBM mix on a shared scheduler ==\n\
         dataset: {} triples on {} nodes; {} worker thread(s); \
         {} queries x {} round(s) per client\n",
        cluster.graph().len(),
        cluster.nodes(),
        worker_threads,
        queries.len(),
        rounds
    );

    // The oracle: each query's answer served solo, before any concurrency.
    // This first pass is also the *cold* planning pass — every template gets
    // fully optimized — so its planning walls are the cold baseline.
    let mut cold_plan_ms: Vec<f64> = Vec::with_capacity(queries.len());
    let reference: Vec<_> = queries
        .iter()
        .map(|query| {
            let answer = service.run(query).expect("solo run serves");
            cold_plan_ms.push(answer.plan_seconds * 1e3);
            stable_answer(&answer)
        })
        .collect();
    // A second solo pass is served from the template plan cache: the *warm*
    // planning wall is constant rebinding instead of full optimization.
    let warm_plan_ms: Vec<f64> = queries
        .iter()
        .map(|query| service.run(query).expect("solo rerun serves").plan_seconds * 1e3)
        .collect();
    let sorted = |mut samples: Vec<f64>| {
        samples.sort_by(|a, b| a.partial_cmp(b).expect("finite walls"));
        samples
    };
    let planning = PlanningSummary {
        cold_plan_ms: percentile_ms(&sorted(cold_plan_ms), 0.5),
        warm_plan_ms: percentile_ms(&sorted(warm_plan_ms), 0.5),
    };
    println!(
        "planning wall, solo (median over the mix): cold {:.3} ms, warm {:.3} ms \
         ({} plan cache)\n",
        planning.cold_plan_ms,
        planning.warm_plan_ms,
        if service.plan_cache().is_some() {
            "template"
        } else {
            "no"
        }
    );

    // The scheduler's own queue instrumentation: the wait histogram is
    // snapshotted around each level so its delta is that level's waits, and
    // the (monotonic) depth high-water mark is sampled after the level.
    let queue_wait = queue_wait_histogram();
    let queue_depth_peak = queue_depth_peak_gauge();

    let mut levels = Vec::new();
    for &clients in &client_levels {
        let wait_before = queue_wait.snapshot();
        let cache_before = service.plan_cache().map(|cache| cache.counters());
        let started = Instant::now();
        let workers: Vec<_> = (0..clients)
            .map(|client| {
                let service = Arc::clone(&service);
                let queries = queries.clone();
                let reference = reference.clone();
                std::thread::spawn(move || {
                    let mut samples = Vec::with_capacity(queries.len() * rounds);
                    for round in 0..rounds {
                        // Offset each client's walk through the mix so the
                        // scheduler really interleaves different plans.
                        for step in 0..queries.len() {
                            let index = (client + round + step) % queries.len();
                            let begun = Instant::now();
                            let answer = service.run(&queries[index]).expect("mix query serves");
                            samples.push((
                                begun.elapsed().as_secs_f64() * 1e3,
                                answer.plan_seconds * 1e3,
                                answer.wall_seconds * 1e3,
                            ));
                            assert_eq!(
                                stable_answer(&answer),
                                reference[index],
                                "{}: interleaved answer diverged from the solo path",
                                queries[index].name()
                            );
                        }
                    }
                    samples
                })
            })
            .collect();
        let samples: Vec<(f64, f64, f64)> = workers
            .into_iter()
            .flat_map(|w| w.join().expect("client thread"))
            .collect();
        let elapsed = started.elapsed().as_secs_f64();
        let sorted = |mut values: Vec<f64>| {
            values.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
            values
        };
        let latencies_ms = sorted(samples.iter().map(|s| s.0).collect());
        let plans_ms = sorted(samples.iter().map(|s| s.1).collect());
        let execs_ms = sorted(samples.iter().map(|s| s.2).collect());
        let level_waits = queue_wait.snapshot().since(&wait_before);
        let cache_hit_rate = cache_before.map(|(hits0, misses0, _)| {
            let (hits, misses, _) = service.plan_cache().expect("cache still on").counters();
            let lookups = (hits - hits0) + (misses - misses0);
            if lookups == 0 {
                0.0
            } else {
                (hits - hits0) as f64 / lookups as f64
            }
        });
        levels.push(ServingLevel {
            clients,
            queries: latencies_ms.len(),
            p50_ms: percentile_ms(&latencies_ms, 0.5),
            p99_ms: percentile_ms(&latencies_ms, 0.99),
            queries_per_s: latencies_ms.len() as f64 / elapsed.max(1e-9),
            queue_wait_p50_ms: level_waits.quantile(0.5).map(|s| s * 1e3),
            queue_wait_p99_ms: level_waits.quantile(0.99).map(|s| s * 1e3),
            queue_depth_peak: Some(queue_depth_peak.get()),
            plan_p50_ms: Some(percentile_ms(&plans_ms, 0.5)),
            exec_p50_ms: Some(percentile_ms(&execs_ms, 0.5)),
            cache_hit_rate,
        });
    }

    let fmt_opt = |value: Option<f64>| value.map_or("-".to_string(), |v| format!("{v:.3}"));
    let rows: Vec<Vec<String>> = levels
        .iter()
        .map(|level| {
            vec![
                level.clients.to_string(),
                level.queries.to_string(),
                format!("{:.2}", level.p50_ms),
                format!("{:.2}", level.p99_ms),
                format!("{:.1}", level.queries_per_s),
                fmt_opt(level.plan_p50_ms),
                fmt_opt(level.exec_p50_ms),
                level
                    .cache_hit_rate
                    .map_or("-".to_string(), |v| format!("{:.0}%", v * 100.0)),
                fmt_opt(level.queue_wait_p50_ms),
                fmt_opt(level.queue_wait_p99_ms),
                level
                    .queue_depth_peak
                    .map_or("-".to_string(), |v| v.to_string()),
            ]
        })
        .collect();
    println!(
        "{}",
        table(
            &[
                "clients",
                "queries",
                "p50 ms",
                "p99 ms",
                "queries/s",
                "plan p50 ms",
                "exec p50 ms",
                "hit rate",
                "qwait p50 ms",
                "qwait p99 ms",
                "qdepth peak",
            ],
            &rows
        )
    );
    println!("every interleaved answer matched the solo single-job path bit for bit");

    if let Some(path) = snapshot_path_with_default(&args, "BENCH_serving.json") {
        write_serving_snapshot(
            &path,
            "LUBM Q1-Q14 closed-loop mix",
            cluster.graph().len(),
            cluster.nodes(),
            worker_threads,
            Some(planning),
            &levels,
        )
        .expect("write serving snapshot");
        println!("snapshot written to {path}");
    }
}
