//! Reproduces **Figure 7** (and Theorem 4.1): the inclusion lattice between
//! the plan spaces of the eight variants, verified empirically by comparing
//! the sets of plan signatures each variant generates on small queries.
//!
//! Usage: `cargo run --release -p cliquesquare-bench --bin report_planspaces`

use cliquesquare_bench::table;
use cliquesquare_core::paper_examples;
use cliquesquare_core::planspace::{figure7_inclusions, plan_signatures};
use cliquesquare_core::OptimizerConfig;
use cliquesquare_querygen::{SyntheticWorkload, WorkloadConfig};

fn main() {
    println!("== Figure 7: plan-space inclusions between variants ==\n");
    let mut queries = vec![
        paper_examples::figure10_query(),
        paper_examples::figure11_qx(),
        paper_examples::figure14_query(),
    ];
    queries.extend(SyntheticWorkload::generate(WorkloadConfig {
        queries_per_shape: 3,
        min_patterns: 2,
        max_patterns: 5,
        seed: 23,
    }));
    let config = OptimizerConfig::recommended();

    let mut rows = Vec::new();
    for (smaller, larger) in figure7_inclusions() {
        let mut holds = true;
        let mut strict_somewhere = false;
        for query in &queries {
            let s = plan_signatures(query, smaller, config);
            let l = plan_signatures(query, larger, config);
            if !s.is_subset(&l) {
                holds = false;
            }
            if s.len() < l.len() {
                strict_somewhere = true;
            }
        }
        rows.push(vec![
            format!("P_{} ⊆ P_{}", smaller.name(), larger.name()),
            if holds { "verified" } else { "VIOLATED" }.to_string(),
            if strict_somewhere { "yes" } else { "no" }.to_string(),
        ]);
    }
    println!(
        "{}",
        table(
            &[
                "Inclusion (Figure 7)",
                "Empirically",
                "Strict on some query"
            ],
            &rows
        )
    );
    println!(
        "All {} inclusion edges of Figure 7 are checked over {} queries.",
        figure7_inclusions().len(),
        queries.len()
    );
}
