//! Reproduces **Figure 9** (and Theorem 4.3): the classification of the
//! eight variants into HO-complete, HO-partial and HO-lossy, checked
//! empirically against the paper's counterexample queries and a synthetic
//! sample.
//!
//! Usage: `cargo run --release -p cliquesquare-bench --bin report_ho_table`

use cliquesquare_bench::table;
use cliquesquare_core::paper_examples;
use cliquesquare_core::planspace::{ho_failures, paper_ho_class, HoClass};
use cliquesquare_core::{OptimizerConfig, Variant};
use cliquesquare_querygen::{SyntheticWorkload, WorkloadConfig};

fn class_name(class: HoClass) -> &'static str {
    match class {
        HoClass::Complete => "HO-complete",
        HoClass::Partial => "HO-partial",
        HoClass::Lossy => "HO-lossy",
    }
}

fn main() {
    println!("== Figure 9: height-optimality classification of the variants ==\n");
    let mut queries = paper_examples::all();
    // A small synthetic sample widens the empirical check beyond the paper's
    // counterexamples (sizes are kept small so SC stays tractable).
    queries.extend(SyntheticWorkload::generate(WorkloadConfig {
        queries_per_shape: 4,
        min_patterns: 2,
        max_patterns: 6,
        seed: 11,
    }));
    let config = OptimizerConfig::recommended();

    let mut rows = Vec::new();
    for variant in Variant::ALL {
        let failures = ho_failures(&queries, variant, config);
        rows.push(vec![
            variant.name().to_string(),
            class_name(paper_ho_class(variant)).to_string(),
            failures.len().to_string(),
            if failures.is_empty() {
                "-".to_string()
            } else {
                failures.join(", ")
            },
        ]);
    }
    println!(
        "{}",
        table(
            &[
                "Option",
                "Paper classification",
                "#queries w/o HO plan",
                "which"
            ],
            &rows
        )
    );
    println!(
        "Expected shape (paper): SC is HO-complete; SC+, MSC+ and MSC are HO-partial \
         (0 failures); MXC+, XC+, MXC and XC are HO-lossy (failures observed, e.g. on Fig14)."
    );
}
