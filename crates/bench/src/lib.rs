//! Shared harness utilities for the benchmark report binaries and Criterion
//! benches that regenerate every table and figure of the paper's evaluation
//! (Section 6). Each `report_*` binary prints one figure; see EXPERIMENTS.md
//! at the repository root for the mapping and recorded outputs.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use cliquesquare_mapreduce::{Cluster, ClusterConfig, Runtime};
use cliquesquare_rdf::{Graph, LubmGenerator, LubmScale};
use std::time::Instant;

/// Default LUBM scale used by the execution reports: large enough that join
/// selectivities differentiate plans (and that the `"University3"` constant
/// of Q11/Q14 exists), small enough to run in seconds.
pub fn report_scale() -> LubmScale {
    LubmScale::with_universities(5)
}

/// A smaller scale for Criterion benches (they run each measurement many times).
pub fn bench_scale() -> LubmScale {
    LubmScale::tiny()
}

/// Generates the LUBM-like dataset at the given scale.
pub fn lubm_graph(scale: LubmScale) -> Graph {
    LubmGenerator::new(scale).generate()
}

/// Loads a 7-node cluster (the paper's testbed size) with the given scale.
pub fn lubm_cluster(scale: LubmScale) -> Cluster {
    Cluster::load(lubm_graph(scale), ClusterConfig::with_nodes(7))
}

/// Resolves the execution runtime of a report binary: an explicit
/// `--threads N` argument wins (also accepting `auto` for the machine's
/// available parallelism), then the `CSQ_THREADS` environment variable,
/// then the deterministic sequential default. A malformed `--threads`
/// value (zero, negative, garbage) prints the parse error and exits with
/// status 2 instead of panicking.
pub fn runtime_from_args(args: &[String]) -> Runtime {
    match flag_value(args, "--threads") {
        Some(value) => Runtime::try_from_option(value).unwrap_or_else(|error| {
            eprintln!("error: invalid --threads: {error}");
            std::process::exit(2);
        }),
        None => Runtime::from_env(),
    }
}

/// Parses `--scale U` (LUBM universities) from the argument list, falling
/// back to `default`. Lets the wall-clock speedup experiments run on a
/// larger dataset than the paper-figure default without recompiling.
pub fn scale_from_args(args: &[String], default: LubmScale) -> LubmScale {
    flag_value(args, "--scale")
        .and_then(|value| value.trim().parse::<usize>().ok())
        .map(|universities| LubmScale::with_universities(universities.max(1)))
        .unwrap_or(default)
}

/// The value of a `--flag value` / `--flag=value` argument, if present.
fn flag_value<'a>(args: &'a [String], flag: &str) -> Option<&'a str> {
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        if arg == flag {
            return iter.next().map(String::as_str);
        }
        if let Some(value) = arg.strip_prefix(flag).and_then(|v| v.strip_prefix('=')) {
            return Some(value);
        }
    }
    None
}

/// Measures `f`'s wall-clock seconds as the best (minimum) of `repeats`
/// runs — the standard way to damp scheduler noise in speedup tables.
pub fn measure_seconds(repeats: usize, mut f: impl FnMut()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..repeats.max(1) {
        let started = Instant::now();
        f();
        best = best.min(started.elapsed().as_secs_f64());
    }
    best
}

/// Formats a fixed-width text table with a header row, used by every report
/// binary so figures are easy to diff against EXPERIMENTS.md.
pub fn table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let format_row = |cells: &[String]| -> String {
        cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:<width$}", c, width = widths.get(i).copied().unwrap_or(0)))
            .collect::<Vec<_>>()
            .join("  ")
            .trim_end()
            .to_string()
    };
    let header_cells: Vec<String> = headers.iter().map(|h| h.to_string()).collect();
    let mut out = format_row(&header_cells);
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * widths.len().saturating_sub(1)));
    out.push('\n');
    for row in rows {
        out.push_str(&format_row(row));
        out.push('\n');
    }
    out
}

/// Formats a float with three significant decimals for report tables.
pub fn fmt_f64(value: f64) -> String {
    if value >= 1000.0 {
        format!("{value:.0}")
    } else if value >= 10.0 {
        format!("{value:.1}")
    } else {
        format!("{value:.3}")
    }
}

/// Formats a ratio as a percentage.
pub fn fmt_percent(value: f64) -> String {
    format!("{:.1}%", value * 100.0)
}

/// Parses the `--snapshot [PATH]` flag: `Some(path)` when a snapshot was
/// requested (`BENCH_execution.json` when no path follows the flag).
pub fn snapshot_path_from_args(args: &[String]) -> Option<String> {
    snapshot_path_with_default(args, "BENCH_execution.json")
}

/// [`snapshot_path_from_args`] with a caller-chosen default file name
/// (`report_load` records `BENCH_load.json`).
pub fn snapshot_path_with_default(args: &[String], default: &str) -> Option<String> {
    let mut iter = args.iter().peekable();
    while let Some(arg) = iter.next() {
        if arg == "--snapshot" {
            return Some(match iter.peek() {
                Some(value) if !value.starts_with("--") => (*value).clone(),
                _ => default.to_string(),
            });
        }
        if let Some(value) = arg.strip_prefix("--snapshot=") {
            return Some(value.to_string());
        }
    }
    None
}

/// One query's entry in the execution bench snapshot.
#[derive(Debug, Clone)]
pub struct SnapshotQuery {
    /// Query name (`Q1` … `Q14`).
    pub name: String,
    /// Number of triple patterns.
    pub patterns: usize,
    /// Paper-style job descriptor of the executed plan (`"M"`, `"1"`, …).
    pub jobs: String,
    /// Simulated response time (Section 5.4 cost model, thread-independent).
    pub simulated_seconds: f64,
    /// Measured wall-clock of the plan on the sequential runtime (ms).
    pub wall_sequential_ms: f64,
    /// Measured wall-clock on the configured parallel runtime (ms).
    pub wall_parallel_ms: f64,
    /// Number of distinct answers.
    pub results: usize,
    /// Index sorts the sequential execution actually performed.
    pub sorts_performed: u64,
    /// Ordering requirements satisfied without a sort.
    pub sorts_elided: u64,
    /// Join inputs that paid a column-permuted re-sort.
    pub join_inputs_resorted: u64,
    /// Factorized join runs emitted instead of materialized cross products.
    pub runs_emitted: u64,
    /// Rows materialized when factorized runs expanded at the projection.
    pub rows_expanded: u64,
    /// Peak logical rows held by any single join intermediate.
    pub peak_rows: u64,
    /// Peak bytes held by any single join intermediate.
    pub peak_bytes: u64,
    /// Median per-operator q-error of the statistics-driven estimator
    /// against measured `rows_out` (`--cardinality` runs only).
    pub median_q_error: Option<f64>,
    /// Largest per-operator q-error (`--cardinality` runs only).
    pub max_q_error: Option<f64>,
}

/// Minimal JSON string escaping (the snapshot only contains query names and
/// job descriptors, but stay correct for arbitrary text).
fn json_escape(text: &str) -> String {
    let mut out = String::with_capacity(text.len());
    for c in text.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Writes the 14-query LUBM execution snapshot as `BENCH_execution.json`:
/// per-query wall milliseconds plus workload totals, so the performance
/// trajectory of the execution stack is recorded next to the code. The
/// writer is hand-rolled because the vendored `serde` is a no-op stub.
pub fn write_execution_snapshot(
    path: &str,
    dataset_triples: usize,
    nodes: usize,
    threads: usize,
    queries: &[SnapshotQuery],
) -> std::io::Result<()> {
    let total_sequential: f64 = queries.iter().map(|q| q.wall_sequential_ms).sum();
    let total_parallel: f64 = queries.iter().map(|q| q.wall_parallel_ms).sum();
    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"benchmark\": \"execution\",\n");
    json.push_str("  \"workload\": \"LUBM Q1-Q14\",\n");
    json.push_str(&format!("  \"dataset_triples\": {dataset_triples},\n"));
    json.push_str(&format!("  \"nodes\": {nodes},\n"));
    json.push_str(&format!("  \"threads\": {threads},\n"));
    json.push_str(&format!(
        "  \"total_wall_sequential_ms\": {total_sequential:.3},\n"
    ));
    json.push_str(&format!(
        "  \"total_wall_parallel_ms\": {total_parallel:.3},\n"
    ));
    json.push_str("  \"queries\": [\n");
    for (index, q) in queries.iter().enumerate() {
        // q-error fields only appear when the run measured them
        // (`--cardinality`), so older readers and diff tools see an
        // unchanged layout otherwise.
        let q_errors = match (q.median_q_error, q.max_q_error) {
            (Some(median), Some(max)) => {
                format!(", \"median_q_error\": {median:.4}, \"max_q_error\": {max:.4}")
            }
            _ => String::new(),
        };
        json.push_str(&format!(
            "    {{\"name\": \"{}\", \"patterns\": {}, \"jobs\": \"{}\", \
             \"simulated_seconds\": {:.6}, \"wall_sequential_ms\": {:.3}, \
             \"wall_parallel_ms\": {:.3}, \"results\": {}, \
             \"sorts_performed\": {}, \"sorts_elided\": {}, \
             \"join_inputs_resorted\": {}, \"runs_emitted\": {}, \
             \"rows_expanded\": {}, \"peak_rows\": {}, \"peak_bytes\": {}{}}}{}\n",
            json_escape(&q.name),
            q.patterns,
            json_escape(&q.jobs),
            q.simulated_seconds,
            q.wall_sequential_ms,
            q.wall_parallel_ms,
            q.results,
            q.sorts_performed,
            q.sorts_elided,
            q.join_inputs_resorted,
            q.runs_emitted,
            q.rows_expanded,
            q.peak_rows,
            q.peak_bytes,
            q_errors,
            if index + 1 == queries.len() { "" } else { "," }
        ));
    }
    json.push_str("  ]\n}\n");
    std::fs::write(path, json)
}

/// One query of a previously recorded execution snapshot, as read back by
/// [`read_execution_snapshot`] for the sort-elision regression table. The
/// counter fields are `None` for snapshots recorded before the
/// interesting-orders pass existed.
#[derive(Debug, Clone, PartialEq)]
pub struct BaselineQuery {
    /// Query name (`Q1` … `Q14`).
    pub name: String,
    /// Recorded sequential wall milliseconds.
    pub wall_sequential_ms: Option<f64>,
    /// Recorded `sorts_performed` counter, if the snapshot has one.
    pub sorts_performed: Option<u64>,
    /// Recorded `sorts_elided` counter, if the snapshot has one.
    pub sorts_elided: Option<u64>,
    /// Recorded `join_inputs_resorted` counter, if the snapshot has one.
    pub join_inputs_resorted: Option<u64>,
    /// Recorded `runs_emitted` counter, if the snapshot has one.
    pub runs_emitted: Option<u64>,
    /// Recorded `rows_expanded` counter, if the snapshot has one.
    pub rows_expanded: Option<u64>,
    /// Recorded `peak_rows` counter, if the snapshot has one.
    pub peak_rows: Option<u64>,
    /// Recorded `peak_bytes` counter, if the snapshot has one.
    pub peak_bytes: Option<u64>,
    /// Recorded median estimator q-error, if the snapshot was made by a
    /// `--cardinality` run.
    pub median_q_error: Option<f64>,
    /// Recorded maximum estimator q-error, if the snapshot has one.
    pub max_q_error: Option<f64>,
}

/// Extracts the raw value of `"key": value` from one JSON object line
/// (sufficient for the snapshot layout [`write_execution_snapshot`] emits:
/// one query object per line, no nesting inside objects).
fn json_field<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    let marker = format!("\"{key}\":");
    let start = line.find(&marker)? + marker.len();
    let rest = line[start..].trim_start();
    let end = rest
        .char_indices()
        .find(|&(i, c)| {
            if rest.starts_with('"') {
                i > 0 && c == '"'
            } else {
                c == ',' || c == '}'
            }
        })
        .map(|(i, _)| if rest.starts_with('"') { i + 1 } else { i })?;
    Some(rest[..end].trim_matches('"'))
}

/// Reads the per-query entries of a snapshot previously written by
/// [`write_execution_snapshot`]. Counter fields missing from older
/// recordings come back as `None`.
pub fn read_execution_snapshot(path: &str) -> std::io::Result<Vec<BaselineQuery>> {
    let contents = std::fs::read_to_string(path)?;
    let mut queries = Vec::new();
    for line in contents.lines() {
        let line = line.trim();
        if !line.starts_with('{') || !line.contains("\"name\"") {
            continue;
        }
        let Some(name) = json_field(line, "name") else {
            continue;
        };
        queries.push(BaselineQuery {
            name: name.to_string(),
            wall_sequential_ms: json_field(line, "wall_sequential_ms").and_then(|v| v.parse().ok()),
            sorts_performed: json_field(line, "sorts_performed").and_then(|v| v.parse().ok()),
            sorts_elided: json_field(line, "sorts_elided").and_then(|v| v.parse().ok()),
            join_inputs_resorted: json_field(line, "join_inputs_resorted")
                .and_then(|v| v.parse().ok()),
            runs_emitted: json_field(line, "runs_emitted").and_then(|v| v.parse().ok()),
            rows_expanded: json_field(line, "rows_expanded").and_then(|v| v.parse().ok()),
            peak_rows: json_field(line, "peak_rows").and_then(|v| v.parse().ok()),
            peak_bytes: json_field(line, "peak_bytes").and_then(|v| v.parse().ok()),
            median_q_error: json_field(line, "median_q_error").and_then(|v| v.parse().ok()),
            max_q_error: json_field(line, "max_q_error").and_then(|v| v.parse().ok()),
        });
    }
    Ok(queries)
}

/// Parses the `--baseline [PATH]` flag of the regression-table mode:
/// `Some(path)` when a baseline diff was requested (`BENCH_execution.json`
/// when no path follows the flag).
pub fn baseline_path_from_args(args: &[String]) -> Option<String> {
    let mut iter = args.iter().peekable();
    while let Some(arg) = iter.next() {
        if arg == "--baseline" {
            return Some(match iter.peek() {
                Some(value) if !value.starts_with("--") => (*value).clone(),
                _ => "BENCH_execution.json".to_string(),
            });
        }
        if let Some(value) = arg.strip_prefix("--baseline=") {
            return Some(value.to_string());
        }
    }
    None
}

/// One pipeline stage's entry in the load bench snapshot.
#[derive(Debug, Clone)]
pub struct LoadStage {
    /// Stage name (`input`, `encode`, `merge`, `index`, `partition`).
    pub name: String,
    /// Stage seconds on the sequential (1-thread) loader.
    pub sequential_seconds: f64,
    /// Stage seconds on the configured parallel loader.
    pub parallel_seconds: f64,
}

/// Writes the bulk-load snapshot as `BENCH_load.json`: per-stage seconds on
/// the sequential and parallel loaders, end-to-end totals and throughputs.
/// Hand-rolled JSON for the same reason as [`write_execution_snapshot`].
#[allow(clippy::too_many_arguments)]
pub fn write_load_snapshot(
    path: &str,
    workload: &str,
    dataset_triples: usize,
    distinct_terms: usize,
    nodes: usize,
    threads: usize,
    chunks: usize,
    stages: &[LoadStage],
) -> std::io::Result<()> {
    let total_sequential: f64 = stages.iter().map(|s| s.sequential_seconds).sum();
    let total_parallel: f64 = stages.iter().map(|s| s.parallel_seconds).sum();
    let throughput = |seconds: f64| {
        if seconds > 0.0 {
            dataset_triples as f64 / seconds
        } else {
            0.0
        }
    };
    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"benchmark\": \"load\",\n");
    json.push_str(&format!("  \"workload\": \"{}\",\n", json_escape(workload)));
    json.push_str(&format!("  \"dataset_triples\": {dataset_triples},\n"));
    json.push_str(&format!("  \"distinct_terms\": {distinct_terms},\n"));
    json.push_str(&format!("  \"nodes\": {nodes},\n"));
    json.push_str(&format!("  \"threads\": {threads},\n"));
    json.push_str(&format!("  \"chunks\": {chunks},\n"));
    json.push_str(&format!(
        "  \"total_sequential_ms\": {:.3},\n",
        total_sequential * 1e3
    ));
    json.push_str(&format!(
        "  \"total_parallel_ms\": {:.3},\n",
        total_parallel * 1e3
    ));
    json.push_str(&format!(
        "  \"sequential_triples_per_s\": {:.0},\n",
        throughput(total_sequential)
    ));
    json.push_str(&format!(
        "  \"parallel_triples_per_s\": {:.0},\n",
        throughput(total_parallel)
    ));
    json.push_str("  \"stages\": [\n");
    for (index, stage) in stages.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"name\": \"{}\", \"sequential_ms\": {:.3}, \"parallel_ms\": {:.3}}}{}\n",
            json_escape(&stage.name),
            stage.sequential_seconds * 1e3,
            stage.parallel_seconds * 1e3,
            if index + 1 == stages.len() { "" } else { "," }
        ));
    }
    json.push_str("  ]\n}\n");
    std::fs::write(path, json)
}

/// One scale's measurements in the multi-scale load snapshot (the
/// `report_load --scale a,b,c` sweep mode writes one entry per scale).
#[derive(Debug, Clone, PartialEq)]
pub struct LoadScaleEntry {
    /// Triples loaded at this scale.
    pub dataset_triples: usize,
    /// Distinct terms in the dictionary at this scale.
    pub distinct_terms: usize,
    /// Chunks the input was split into.
    pub chunks: usize,
    /// Partitions of the parallel dictionary merge (1 = serial merge).
    pub merge_partitions: usize,
    /// Input (parse or generate) stage seconds.
    pub input_seconds: f64,
    /// Dictionary-encode stage seconds.
    pub encode_seconds: f64,
    /// Dictionary-merge stage seconds.
    pub merge_seconds: f64,
    /// Index-build stage seconds.
    pub index_seconds: f64,
    /// Partition-build stage seconds.
    pub partition_seconds: f64,
    /// End-to-end seconds.
    pub total_seconds: f64,
    /// End-to-end triples per second.
    pub triples_per_second: f64,
    /// Peak decoded-triple bytes simultaneously in flight (streaming gauge).
    pub peak_inflight_bytes: u64,
    /// Total decoded-triple bytes that passed through the pipeline.
    pub parsed_bytes: u64,
}

/// Writes the multi-scale load snapshot (`report_load --scale a,b,c`): an
/// array of per-scale entries instead of the single-run object of
/// [`write_load_snapshot`]. [`read_load_snapshot`] reads both formats.
pub fn write_load_scale_snapshot(
    path: &str,
    workload: &str,
    nodes: usize,
    threads: usize,
    entries: &[LoadScaleEntry],
) -> std::io::Result<()> {
    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"benchmark\": \"load\",\n");
    json.push_str(&format!("  \"workload\": \"{}\",\n", json_escape(workload)));
    json.push_str(&format!("  \"nodes\": {nodes},\n"));
    json.push_str(&format!("  \"threads\": {threads},\n"));
    json.push_str("  \"scales\": [\n");
    for (index, e) in entries.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"dataset_triples\": {}, \"distinct_terms\": {}, \"chunks\": {}, \
             \"merge_partitions\": {}, \"input_ms\": {:.3}, \"encode_ms\": {:.3}, \
             \"merge_ms\": {:.3}, \"index_ms\": {:.3}, \"partition_ms\": {:.3}, \
             \"total_ms\": {:.3}, \"triples_per_s\": {:.0}, \
             \"peak_inflight_bytes\": {}, \"parsed_bytes\": {}}}{}\n",
            e.dataset_triples,
            e.distinct_terms,
            e.chunks,
            e.merge_partitions,
            e.input_seconds * 1e3,
            e.encode_seconds * 1e3,
            e.merge_seconds * 1e3,
            e.index_seconds * 1e3,
            e.partition_seconds * 1e3,
            e.total_seconds * 1e3,
            e.triples_per_second,
            e.peak_inflight_bytes,
            e.parsed_bytes,
            if index + 1 == entries.len() { "" } else { "," }
        ));
    }
    json.push_str("  ]\n}\n");
    std::fs::write(path, json)
}

/// Reads a load snapshot back as per-scale entries. Accepts both formats:
/// the multi-scale array of [`write_load_scale_snapshot`] (one line per
/// scale entry) and the legacy single-object layout of
/// [`write_load_snapshot`], which comes back as one entry assembled from
/// the top-level fields and the per-stage `parallel_ms` lines (fields the
/// legacy format never recorded are zero).
pub fn read_load_snapshot(path: &str) -> std::io::Result<Vec<LoadScaleEntry>> {
    let contents = std::fs::read_to_string(path)?;
    let ms_field = |line: &str, key: &str| -> f64 {
        json_field(line, key)
            .and_then(|v| v.parse::<f64>().ok())
            .unwrap_or(0.0)
            / 1e3
    };
    let count_field = |line: &str, key: &str| -> u64 {
        json_field(line, key)
            .and_then(|v| v.parse().ok())
            .unwrap_or(0)
    };
    let mut entries: Vec<LoadScaleEntry> = Vec::new();
    for line in contents.lines() {
        let line = line.trim();
        if !line.starts_with('{') || !line.contains("\"dataset_triples\"") {
            continue;
        }
        entries.push(LoadScaleEntry {
            dataset_triples: count_field(line, "dataset_triples") as usize,
            distinct_terms: count_field(line, "distinct_terms") as usize,
            chunks: count_field(line, "chunks") as usize,
            merge_partitions: count_field(line, "merge_partitions") as usize,
            input_seconds: ms_field(line, "input_ms"),
            encode_seconds: ms_field(line, "encode_ms"),
            merge_seconds: ms_field(line, "merge_ms"),
            index_seconds: ms_field(line, "index_ms"),
            partition_seconds: ms_field(line, "partition_ms"),
            total_seconds: ms_field(line, "total_ms"),
            triples_per_second: json_field(line, "triples_per_s")
                .and_then(|v| v.parse().ok())
                .unwrap_or(0.0),
            peak_inflight_bytes: count_field(line, "peak_inflight_bytes"),
            parsed_bytes: count_field(line, "parsed_bytes"),
        });
    }
    if !entries.is_empty() {
        return Ok(entries);
    }
    // Legacy single-object format: top-level scalars (one `"key": value`
    // per line) plus `{"name": ..., "sequential_ms": ..., "parallel_ms": ...}`
    // stage lines.
    let mut entry = LoadScaleEntry {
        dataset_triples: 0,
        distinct_terms: 0,
        chunks: 0,
        merge_partitions: 0,
        input_seconds: 0.0,
        encode_seconds: 0.0,
        merge_seconds: 0.0,
        index_seconds: 0.0,
        partition_seconds: 0.0,
        total_seconds: 0.0,
        triples_per_second: 0.0,
        peak_inflight_bytes: 0,
        parsed_bytes: 0,
    };
    let mut saw_any = false;
    for line in contents.lines() {
        let line = line.trim();
        if line.starts_with('{') {
            if let Some(name) = json_field(line, "name") {
                let seconds = ms_field(line, "parallel_ms");
                match name {
                    "input" => entry.input_seconds = seconds,
                    "encode" => entry.encode_seconds = seconds,
                    "merge" => entry.merge_seconds = seconds,
                    "index" => entry.index_seconds = seconds,
                    "partition" => entry.partition_seconds = seconds,
                    _ => {}
                }
                saw_any = true;
            }
            continue;
        }
        if let Some(value) = json_field(line, "dataset_triples") {
            entry.dataset_triples = value.parse().unwrap_or(0);
            saw_any = true;
        } else if let Some(value) = json_field(line, "distinct_terms") {
            entry.distinct_terms = value.parse().unwrap_or(0);
        } else if let Some(value) = json_field(line, "chunks") {
            entry.chunks = value.parse().unwrap_or(0);
        } else if let Some(value) = json_field(line, "total_parallel_ms") {
            entry.total_seconds = value.parse::<f64>().unwrap_or(0.0) / 1e3;
        } else if let Some(value) = json_field(line, "parallel_triples_per_s") {
            entry.triples_per_second = value.parse().unwrap_or(0.0);
        }
    }
    Ok(if saw_any { vec![entry] } else { Vec::new() })
}

/// Top-level identification of a recorded snapshot, read without assuming
/// its benchmark kind: which `report_*` binary wrote it and at what dataset
/// size. Lets `report_execution --baseline` skip gracefully over a
/// snapshot recorded by a different benchmark (or at a different scale)
/// instead of mis-parsing it.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SnapshotMeta {
    /// The `"benchmark"` field (`execution`, `load`, `serving`), if present.
    pub benchmark: Option<String>,
    /// The top-level `"dataset_triples"` field, if present.
    pub dataset_triples: Option<usize>,
}

/// Reads the top-level [`SnapshotMeta`] fields of any snapshot file. Only
/// top-level scalar lines are considered — nested per-query / per-scale
/// object lines (which start with `{`) never contribute.
pub fn read_snapshot_meta(path: &str) -> std::io::Result<SnapshotMeta> {
    let contents = std::fs::read_to_string(path)?;
    let mut meta = SnapshotMeta::default();
    for line in contents.lines() {
        let line = line.trim();
        if line.starts_with('{') || line.starts_with('[') {
            continue;
        }
        if meta.benchmark.is_none() {
            if let Some(value) = json_field(line, "benchmark") {
                meta.benchmark = Some(value.to_string());
            }
        }
        if meta.dataset_triples.is_none() {
            if let Some(value) = json_field(line, "dataset_triples") {
                meta.dataset_triples = value.parse().ok();
            }
        }
    }
    Ok(meta)
}

/// One concurrency level's measurements in the serving bench snapshot.
#[derive(Debug, Clone)]
pub struct ServingLevel {
    /// Number of closed-loop client threads.
    pub clients: usize,
    /// Total queries completed at this level.
    pub queries: usize,
    /// Median per-query latency in milliseconds.
    pub p50_ms: f64,
    /// 99th-percentile per-query latency in milliseconds.
    pub p99_ms: f64,
    /// Completed queries per wall-clock second.
    pub queries_per_s: f64,
    /// Median scheduler queue wait during this level, from the
    /// `csq_scheduler_task_wait_seconds` histogram delta (`None` in
    /// snapshots recorded before the metric existed).
    pub queue_wait_p50_ms: Option<f64>,
    /// 99th-percentile scheduler queue wait during this level.
    pub queue_wait_p99_ms: Option<f64>,
    /// Scheduler queue-depth high-water mark sampled after this level ran
    /// (monotonic over the process, so levels only grow it).
    pub queue_depth_peak: Option<i64>,
    /// Median per-query *planning* wall in milliseconds — the slice of each
    /// request spent in the optimizer (or the plan-cache hit path) before
    /// execution starts. `None` in snapshots recorded before planning and
    /// execution walls were reported separately.
    pub plan_p50_ms: Option<f64>,
    /// Median per-query *execution* wall in milliseconds, disjoint from
    /// `plan_p50_ms` (the two no longer get conflated into one number).
    pub exec_p50_ms: Option<f64>,
    /// Fraction of this level's queries served from the template plan
    /// cache, from the `csq_plancache_{hits,misses}_total` counter deltas.
    pub cache_hit_rate: Option<f64>,
}

/// Cold-vs-warm planning walls measured solo before the concurrency levels:
/// `cold` is the first planning of each template (full optimization), `warm`
/// is a repeat pass served by template-cache rebinding.
#[derive(Debug, Clone, Copy)]
pub struct PlanningSummary {
    /// Median first-time planning wall across the mix, in milliseconds.
    pub cold_plan_ms: f64,
    /// Median repeat planning wall across the mix, in milliseconds.
    pub warm_plan_ms: f64,
}

/// The `q`-quantile (0.0–1.0) of a latency sample by nearest-rank on the
/// sorted data; `0.0` for an empty sample.
pub fn percentile_ms(sorted_ms: &[f64], q: f64) -> f64 {
    if sorted_ms.is_empty() {
        return 0.0;
    }
    let rank = ((sorted_ms.len() - 1) as f64 * q).round() as usize;
    sorted_ms[rank.min(sorted_ms.len() - 1)]
}

/// Writes the closed-loop serving snapshot as `BENCH_serving.json`: p50/p99
/// latency and queries/s at each client-thread count. Hand-rolled JSON for
/// the same reason as [`write_execution_snapshot`].
pub fn write_serving_snapshot(
    path: &str,
    workload: &str,
    dataset_triples: usize,
    nodes: usize,
    worker_threads: usize,
    planning: Option<PlanningSummary>,
    levels: &[ServingLevel],
) -> std::io::Result<()> {
    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"benchmark\": \"serving\",\n");
    json.push_str(&format!("  \"workload\": \"{}\",\n", json_escape(workload)));
    json.push_str(&format!("  \"dataset_triples\": {dataset_triples},\n"));
    json.push_str(&format!("  \"nodes\": {nodes},\n"));
    json.push_str(&format!("  \"worker_threads\": {worker_threads},\n"));
    if let Some(planning) = planning {
        json.push_str(&format!(
            "  \"cold_plan_ms\": {:.4},\n  \"warm_plan_ms\": {:.4},\n",
            planning.cold_plan_ms, planning.warm_plan_ms
        ));
    }
    json.push_str("  \"levels\": [\n");
    for (index, level) in levels.iter().enumerate() {
        let mut line = format!(
            "    {{\"clients\": {}, \"queries\": {}, \"p50_ms\": {:.3}, \
             \"p99_ms\": {:.3}, \"queries_per_s\": {:.1}",
            level.clients, level.queries, level.p50_ms, level.p99_ms, level.queries_per_s,
        );
        if let Some(wait) = level.queue_wait_p50_ms {
            line.push_str(&format!(", \"queue_wait_p50_ms\": {wait:.3}"));
        }
        if let Some(wait) = level.queue_wait_p99_ms {
            line.push_str(&format!(", \"queue_wait_p99_ms\": {wait:.3}"));
        }
        if let Some(peak) = level.queue_depth_peak {
            line.push_str(&format!(", \"queue_depth_peak\": {peak}"));
        }
        if let Some(plan) = level.plan_p50_ms {
            line.push_str(&format!(", \"plan_p50_ms\": {plan:.4}"));
        }
        if let Some(exec) = level.exec_p50_ms {
            line.push_str(&format!(", \"exec_p50_ms\": {exec:.4}"));
        }
        if let Some(rate) = level.cache_hit_rate {
            line.push_str(&format!(", \"cache_hit_rate\": {rate:.4}"));
        }
        line.push_str(if index + 1 == levels.len() {
            "}\n"
        } else {
            "},\n"
        });
        json.push_str(&line);
    }
    json.push_str("  ]\n}\n");
    std::fs::write(path, json)
}

/// Reads the per-level entries of a snapshot previously written by
/// [`write_serving_snapshot`]. Queue-wait fields missing from older
/// recordings (which predate the scheduler metrics) come back as `None`, so
/// readers work across both formats.
pub fn read_serving_snapshot(path: &str) -> std::io::Result<Vec<ServingLevel>> {
    let contents = std::fs::read_to_string(path)?;
    let mut levels = Vec::new();
    for line in contents.lines() {
        let line = line.trim().trim_end_matches(',');
        if !line.starts_with('{') || !line.contains("\"clients\"") {
            continue;
        }
        let Some(clients) = json_field(line, "clients").and_then(|v| v.parse().ok()) else {
            continue;
        };
        levels.push(ServingLevel {
            clients,
            queries: json_field(line, "queries")
                .and_then(|v| v.parse().ok())
                .unwrap_or(0),
            p50_ms: json_field(line, "p50_ms")
                .and_then(|v| v.parse().ok())
                .unwrap_or(0.0),
            p99_ms: json_field(line, "p99_ms")
                .and_then(|v| v.parse().ok())
                .unwrap_or(0.0),
            queries_per_s: json_field(line, "queries_per_s")
                .and_then(|v| v.parse().ok())
                .unwrap_or(0.0),
            queue_wait_p50_ms: json_field(line, "queue_wait_p50_ms").and_then(|v| v.parse().ok()),
            queue_wait_p99_ms: json_field(line, "queue_wait_p99_ms").and_then(|v| v.parse().ok()),
            queue_depth_peak: json_field(line, "queue_depth_peak").and_then(|v| v.parse().ok()),
            plan_p50_ms: json_field(line, "plan_p50_ms").and_then(|v| v.parse().ok()),
            exec_p50_ms: json_field(line, "exec_p50_ms").and_then(|v| v.parse().ok()),
            cache_hit_rate: json_field(line, "cache_hit_rate").and_then(|v| v.parse().ok()),
        });
    }
    Ok(levels)
}

/// Reads the top-level cold-vs-warm planning walls from a serving snapshot;
/// `None` for recordings that predate separate planning/execution reporting.
pub fn read_serving_planning(path: &str) -> std::io::Result<Option<PlanningSummary>> {
    let contents = std::fs::read_to_string(path)?;
    let mut cold = None;
    let mut warm = None;
    for line in contents.lines() {
        if line.trim_start().starts_with('{') && line.contains("\"clients\"") {
            break; // planning walls sit above the levels array
        }
        if let Some(value) = json_field(line, "cold_plan_ms") {
            cold = value.parse().ok();
        }
        if let Some(value) = json_field(line, "warm_plan_ms") {
            warm = value.parse().ok();
        }
    }
    Ok(match (cold, warm) {
        (Some(cold_plan_ms), Some(warm_plan_ms)) => Some(PlanningSummary {
            cold_plan_ms,
            warm_plan_ms,
        }),
        _ => None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_aligns_columns() {
        let text = table(
            &["name", "value"],
            &[
                vec!["a".to_string(), "1".to_string()],
                vec!["longer".to_string(), "2.5".to_string()],
            ],
        );
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("name"));
        assert!(lines[2].starts_with("a"));
        assert!(lines[3].starts_with("longer"));
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(fmt_f64(0.1234), "0.123");
        assert_eq!(fmt_f64(12.34), "12.3");
        assert_eq!(fmt_f64(1234.6), "1235");
        assert_eq!(fmt_percent(0.5), "50.0%");
    }

    #[test]
    fn cluster_helpers_load_data() {
        let cluster = lubm_cluster(bench_scale());
        assert_eq!(cluster.nodes(), 7);
        assert!(cluster.graph().len() > 100);
    }

    #[test]
    fn runtime_argument_parsing() {
        let args = |list: &[&str]| -> Vec<String> { list.iter().map(|s| s.to_string()).collect() };
        assert_eq!(runtime_from_args(&args(&["--threads", "4"])).threads(), 4);
        assert_eq!(runtime_from_args(&args(&["--threads=2"])).threads(), 2);
        assert!(runtime_from_args(&args(&["--threads", "auto"])).threads() >= 1);
        // No flag: defers to CSQ_THREADS / sequential; just ensure sanity.
        assert!(runtime_from_args(&args(&["--fast"])).threads() >= 1);
    }

    #[test]
    fn scale_argument_parsing() {
        let args = |list: &[&str]| -> Vec<String> { list.iter().map(|s| s.to_string()).collect() };
        assert_eq!(
            scale_from_args(&args(&["--scale", "12"]), report_scale()),
            LubmScale::with_universities(12)
        );
        assert_eq!(
            scale_from_args(&args(&["--scale=3"]), report_scale()),
            LubmScale::with_universities(3)
        );
        assert_eq!(scale_from_args(&args(&[]), report_scale()), report_scale());
    }

    #[test]
    fn execution_snapshot_round_trips_through_the_reader() {
        let queries = vec![
            SnapshotQuery {
                name: "Q1".to_string(),
                patterns: 2,
                jobs: "M".to_string(),
                simulated_seconds: 8.5,
                wall_sequential_ms: 0.95,
                wall_parallel_ms: 1.2,
                results: 42,
                sorts_performed: 3,
                sorts_elided: 17,
                join_inputs_resorted: 1,
                runs_emitted: 5,
                rows_expanded: 40,
                peak_rows: 60,
                peak_bytes: 480,
                median_q_error: Some(1.25),
                max_q_error: Some(8.0),
            },
            SnapshotQuery {
                name: "Q2".to_string(),
                patterns: 3,
                jobs: "1".to_string(),
                simulated_seconds: 9.0,
                wall_sequential_ms: 0.5,
                wall_parallel_ms: 0.4,
                results: 7,
                sorts_performed: 0,
                sorts_elided: 20,
                join_inputs_resorted: 0,
                runs_emitted: 0,
                rows_expanded: 0,
                peak_rows: 7,
                peak_bytes: 56,
                median_q_error: None,
                max_q_error: None,
            },
        ];
        let path = std::env::temp_dir().join("csq_snapshot_roundtrip.json");
        let path = path.to_str().unwrap();
        write_execution_snapshot(path, 1000, 7, 1, &queries).unwrap();
        let read = read_execution_snapshot(path).unwrap();
        assert_eq!(read.len(), 2);
        assert_eq!(read[0].name, "Q1");
        assert_eq!(read[0].sorts_performed, Some(3));
        assert_eq!(read[0].sorts_elided, Some(17));
        assert_eq!(read[0].join_inputs_resorted, Some(1));
        assert_eq!(read[0].wall_sequential_ms, Some(0.95));
        assert_eq!(read[0].runs_emitted, Some(5));
        assert_eq!(read[0].rows_expanded, Some(40));
        assert_eq!(read[0].peak_rows, Some(60));
        assert_eq!(read[0].peak_bytes, Some(480));
        assert_eq!(read[0].median_q_error, Some(1.25));
        assert_eq!(read[0].max_q_error, Some(8.0));
        assert_eq!(read[1].name, "Q2");
        assert_eq!(read[1].sorts_performed, Some(0));
        // A query recorded without q-error fields reads back as None — the
        // reader is back-compatible with pre-cardinality snapshots.
        assert_eq!(read[1].median_q_error, None);
        assert_eq!(read[1].max_q_error, None);
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn baseline_flag_parsing() {
        let args = |list: &[&str]| -> Vec<String> { list.iter().map(|s| s.to_string()).collect() };
        assert_eq!(
            baseline_path_from_args(&args(&["--baseline", "old.json"])),
            Some("old.json".to_string())
        );
        assert_eq!(
            baseline_path_from_args(&args(&["--baseline"])),
            Some("BENCH_execution.json".to_string())
        );
        assert_eq!(
            baseline_path_from_args(&args(&["--baseline=x.json"])),
            Some("x.json".to_string())
        );
        assert_eq!(baseline_path_from_args(&args(&["--threads", "4"])), None);
    }

    fn scale_entry(triples: usize) -> LoadScaleEntry {
        LoadScaleEntry {
            dataset_triples: triples,
            distinct_terms: triples / 3,
            chunks: 8,
            merge_partitions: 4,
            input_seconds: 0.010,
            encode_seconds: 0.020,
            merge_seconds: 0.005,
            index_seconds: 0.004,
            partition_seconds: 0.003,
            total_seconds: 0.042,
            triples_per_second: triples as f64 / 0.042,
            peak_inflight_bytes: 4096,
            parsed_bytes: 65536,
        }
    }

    #[test]
    fn load_scale_snapshot_round_trips_through_the_reader() {
        let entries = vec![scale_entry(20_000), scale_entry(200_000)];
        let path = std::env::temp_dir().join("csq_load_scales_roundtrip.json");
        let path = path.to_str().unwrap();
        write_load_scale_snapshot(path, "LUBM sweep", 7, 2, &entries).unwrap();
        let read = read_load_snapshot(path).unwrap();
        assert_eq!(read.len(), 2);
        assert_eq!(read[0].dataset_triples, 20_000);
        assert_eq!(read[1].dataset_triples, 200_000);
        assert_eq!(read[0].merge_partitions, 4);
        assert_eq!(read[0].peak_inflight_bytes, 4096);
        assert!((read[0].merge_seconds - 0.005).abs() < 1e-9);
        assert!((read[1].total_seconds - 0.042).abs() < 1e-9);
        let meta = read_snapshot_meta(path).unwrap();
        assert_eq!(meta.benchmark.as_deref(), Some("load"));
        assert_eq!(meta.dataset_triples, None);
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn load_reader_accepts_the_legacy_single_object_format() {
        let stages = vec![
            LoadStage {
                name: "input".to_string(),
                sequential_seconds: 0.030,
                parallel_seconds: 0.015,
            },
            LoadStage {
                name: "merge".to_string(),
                sequential_seconds: 0.008,
                parallel_seconds: 0.008,
            },
        ];
        let path = std::env::temp_dir().join("csq_load_legacy_roundtrip.json");
        let path = path.to_str().unwrap();
        write_load_snapshot(path, "LUBM N-Triples load", 12_345, 678, 7, 2, 8, &stages).unwrap();
        let read = read_load_snapshot(path).unwrap();
        assert_eq!(read.len(), 1);
        assert_eq!(read[0].dataset_triples, 12_345);
        assert_eq!(read[0].distinct_terms, 678);
        assert_eq!(read[0].chunks, 8);
        assert!((read[0].input_seconds - 0.015).abs() < 1e-9);
        assert!((read[0].merge_seconds - 0.008).abs() < 1e-9);
        assert!((read[0].total_seconds - 0.023).abs() < 1e-9);
        // Fields the legacy format never recorded come back zeroed.
        assert_eq!(read[0].merge_partitions, 0);
        assert_eq!(read[0].peak_inflight_bytes, 0);
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn snapshot_meta_identifies_the_benchmark_kind() {
        let path = std::env::temp_dir().join("csq_meta_probe.json");
        let path = path.to_str().unwrap();
        write_execution_snapshot(
            path,
            999,
            7,
            1,
            &[SnapshotQuery {
                name: "Q1".to_string(),
                patterns: 2,
                jobs: "M".to_string(),
                simulated_seconds: 1.0,
                wall_sequential_ms: 1.0,
                wall_parallel_ms: 1.0,
                results: 1,
                sorts_performed: 0,
                sorts_elided: 0,
                join_inputs_resorted: 0,
                runs_emitted: 0,
                rows_expanded: 0,
                peak_rows: 0,
                peak_bytes: 0,
                median_q_error: None,
                max_q_error: None,
            }],
        )
        .unwrap();
        let meta = read_snapshot_meta(path).unwrap();
        assert_eq!(meta.benchmark.as_deref(), Some("execution"));
        assert_eq!(meta.dataset_triples, Some(999));
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn serving_snapshot_round_trips_queue_wait_fields() {
        let levels = vec![
            ServingLevel {
                clients: 1,
                queries: 14,
                p50_ms: 2.5,
                p99_ms: 9.0,
                queries_per_s: 120.0,
                queue_wait_p50_ms: Some(0.125),
                queue_wait_p99_ms: Some(1.75),
                queue_depth_peak: Some(6),
                plan_p50_ms: Some(0.4),
                exec_p50_ms: Some(2.1),
                cache_hit_rate: Some(0.9286),
            },
            ServingLevel {
                clients: 4,
                queries: 56,
                p50_ms: 3.5,
                p99_ms: 12.0,
                queries_per_s: 300.0,
                queue_wait_p50_ms: None,
                queue_wait_p99_ms: None,
                queue_depth_peak: None,
                plan_p50_ms: None,
                exec_p50_ms: None,
                cache_hit_rate: None,
            },
        ];
        let planning = PlanningSummary {
            cold_plan_ms: 0.85,
            warm_plan_ms: 0.05,
        };
        let path = std::env::temp_dir().join("csq_serving_roundtrip.json");
        let path = path.to_str().unwrap();
        write_serving_snapshot(path, "LUBM mix", 1000, 7, 2, Some(planning), &levels).unwrap();
        let read = read_serving_snapshot(path).unwrap();
        assert_eq!(read.len(), 2);
        assert_eq!(read[0].clients, 1);
        assert_eq!(read[0].queries, 14);
        assert!((read[0].p99_ms - 9.0).abs() < 1e-9);
        assert_eq!(read[0].queue_wait_p50_ms, Some(0.125));
        assert_eq!(read[0].queue_wait_p99_ms, Some(1.75));
        assert_eq!(read[0].queue_depth_peak, Some(6));
        assert_eq!(read[0].plan_p50_ms, Some(0.4));
        assert_eq!(read[0].exec_p50_ms, Some(2.1));
        assert_eq!(read[0].cache_hit_rate, Some(0.9286));
        assert_eq!(read[1].clients, 4);
        assert_eq!(read[1].queue_wait_p50_ms, None);
        assert_eq!(read[1].queue_depth_peak, None);
        assert_eq!(read[1].plan_p50_ms, None);
        assert_eq!(read[1].cache_hit_rate, None);
        let walls = read_serving_planning(path)
            .unwrap()
            .expect("planning walls");
        assert!((walls.cold_plan_ms - 0.85).abs() < 1e-9);
        assert!((walls.warm_plan_ms - 0.05).abs() < 1e-9);
        let meta = read_snapshot_meta(path).unwrap();
        assert_eq!(meta.benchmark.as_deref(), Some("serving"));
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn serving_reader_accepts_the_pre_queue_metrics_format() {
        // A snapshot exactly as written before the scheduler queue metrics
        // existed: no queue_wait / queue_depth fields on the level lines.
        let old = "{\n  \"benchmark\": \"serving\",\n  \"workload\": \"LUBM Q1-Q14 closed-loop mix\",\n  \"dataset_triples\": 4880,\n  \"nodes\": 7,\n  \"worker_threads\": 4,\n  \"levels\": [\n    {\"clients\": 1, \"queries\": 14, \"p50_ms\": 1.234, \"p99_ms\": 5.678, \"queries_per_s\": 88.1},\n    {\"clients\": 2, \"queries\": 28, \"p50_ms\": 1.500, \"p99_ms\": 6.000, \"queries_per_s\": 140.0}\n  ]\n}\n";
        let path = std::env::temp_dir().join("csq_serving_legacy.json");
        let path = path.to_str().unwrap();
        std::fs::write(path, old).unwrap();
        let read = read_serving_snapshot(path).unwrap();
        assert_eq!(read.len(), 2);
        assert_eq!(read[0].clients, 1);
        assert!((read[0].p50_ms - 1.234).abs() < 1e-9);
        assert!((read[1].queries_per_s - 140.0).abs() < 1e-9);
        assert_eq!(read[0].queue_wait_p50_ms, None);
        assert_eq!(read[0].queue_wait_p99_ms, None);
        assert_eq!(read[0].queue_depth_peak, None);
        assert_eq!(read[0].plan_p50_ms, None);
        assert_eq!(read[0].exec_p50_ms, None);
        assert_eq!(read[0].cache_hit_rate, None);
        assert!(read_serving_planning(path).unwrap().is_none());
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn percentiles_use_nearest_rank_on_sorted_data() {
        let sorted = [1.0, 2.0, 3.0, 4.0, 100.0];
        assert_eq!(percentile_ms(&sorted, 0.5), 3.0);
        assert_eq!(percentile_ms(&sorted, 0.99), 100.0);
        assert_eq!(percentile_ms(&sorted, 0.0), 1.0);
        assert_eq!(percentile_ms(&[], 0.5), 0.0);
    }

    #[test]
    fn measure_seconds_returns_a_finite_minimum() {
        let seconds = measure_seconds(3, || {
            std::hint::black_box((0..1000).sum::<u64>());
        });
        assert!(seconds.is_finite() && seconds >= 0.0);
    }
}
