//! Shared harness utilities for the benchmark report binaries and Criterion
//! benches that regenerate every table and figure of the paper's evaluation
//! (Section 6). Each `report_*` binary prints one figure; see EXPERIMENTS.md
//! at the repository root for the mapping and recorded outputs.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use cliquesquare_mapreduce::{Cluster, ClusterConfig};
use cliquesquare_rdf::{Graph, LubmGenerator, LubmScale};

/// Default LUBM scale used by the execution reports: large enough that join
/// selectivities differentiate plans (and that the `"University3"` constant
/// of Q11/Q14 exists), small enough to run in seconds.
pub fn report_scale() -> LubmScale {
    LubmScale::with_universities(5)
}

/// A smaller scale for Criterion benches (they run each measurement many times).
pub fn bench_scale() -> LubmScale {
    LubmScale::tiny()
}

/// Generates the LUBM-like dataset at the given scale.
pub fn lubm_graph(scale: LubmScale) -> Graph {
    LubmGenerator::new(scale).generate()
}

/// Loads a 7-node cluster (the paper's testbed size) with the given scale.
pub fn lubm_cluster(scale: LubmScale) -> Cluster {
    Cluster::load(lubm_graph(scale), ClusterConfig::with_nodes(7))
}

/// Formats a fixed-width text table with a header row, used by every report
/// binary so figures are easy to diff against EXPERIMENTS.md.
pub fn table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let format_row = |cells: &[String]| -> String {
        cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:<width$}", c, width = widths.get(i).copied().unwrap_or(0)))
            .collect::<Vec<_>>()
            .join("  ")
            .trim_end()
            .to_string()
    };
    let header_cells: Vec<String> = headers.iter().map(|h| h.to_string()).collect();
    let mut out = format_row(&header_cells);
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * widths.len().saturating_sub(1)));
    out.push('\n');
    for row in rows {
        out.push_str(&format_row(row));
        out.push('\n');
    }
    out
}

/// Formats a float with three significant decimals for report tables.
pub fn fmt_f64(value: f64) -> String {
    if value >= 1000.0 {
        format!("{value:.0}")
    } else if value >= 10.0 {
        format!("{value:.1}")
    } else {
        format!("{value:.3}")
    }
}

/// Formats a ratio as a percentage.
pub fn fmt_percent(value: f64) -> String {
    format!("{:.1}%", value * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_aligns_columns() {
        let text = table(
            &["name", "value"],
            &[
                vec!["a".to_string(), "1".to_string()],
                vec!["longer".to_string(), "2.5".to_string()],
            ],
        );
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("name"));
        assert!(lines[2].starts_with("a"));
        assert!(lines[3].starts_with("longer"));
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(fmt_f64(0.1234), "0.123");
        assert_eq!(fmt_f64(12.34), "12.3");
        assert_eq!(fmt_f64(1234.6), "1235");
        assert_eq!(fmt_percent(0.5), "50.0%");
    }

    #[test]
    fn cluster_helpers_load_data() {
        let cluster = lubm_cluster(bench_scale());
        assert_eq!(cluster.nodes(), 7);
        assert!(cluster.graph().len() > 100);
    }
}
