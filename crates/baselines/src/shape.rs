//! A simulation of SHAPE with 2-hop forward semantic hash partitioning
//! (Lee & Liu, *Scaling Queries over Big RDF Graphs with Semantic Hash
//! Partitioning*, PVLDB 2013) — the "SHAPE-2f" baseline of Figure 21.
//!
//! SHAPE partitions triples by hashing their subject and replicating every
//! triple reachable within two forward hops of the anchor, so that any query
//! fully contained in such a 2-hop forward tree is **PWOC**: each node
//! answers it locally with its RDF-3X store and results are simply
//! concatenated. Queries exceeding the guarantee are split into 2-hop
//! fragments, each evaluated locally, and the fragments are combined with
//! one MapReduce (binary) join per step — SHAPE's optimizer is heuristic and
//! produces a single plan.
//!
//! The simulation reproduces exactly that behaviour over our cluster: local
//! fragment evaluation uses indexed access (cost proportional to the
//! fragment's *result*, not to full scans), while every inter-fragment join
//! pays the full shuffle and job overhead.

use crate::report::SystemRunReport;
use cliquesquare_engine::reference::reference_eval;
use cliquesquare_engine::Relation;
use cliquesquare_mapreduce::{Cluster, ExecutionMetrics};
use cliquesquare_sparql::{BgpQuery, PatternTerm, Variable};
use std::collections::BTreeSet;

/// The SHAPE-2f comparator system.
#[derive(Debug, Clone, Copy)]
pub struct ShapeSystem<'a> {
    cluster: &'a Cluster,
}

impl<'a> ShapeSystem<'a> {
    /// Creates a SHAPE instance over the given cluster.
    pub fn new(cluster: &'a Cluster) -> Self {
        Self { cluster }
    }

    /// Splits a query into 2-hop forward fragments: each fragment contains a
    /// subject star plus the subject stars of its objects (one forward hop
    /// further). A query producing a single fragment is PWOC for SHAPE-2f.
    pub fn fragments(query: &BgpQuery) -> Vec<Vec<usize>> {
        let patterns = query.patterns();
        let mut remaining: BTreeSet<usize> = (0..patterns.len()).collect();
        let mut fragments = Vec::new();
        while let Some(&seed) = remaining.iter().next() {
            let anchor = patterns[seed].subject.clone();
            // First hop: the anchor's subject star.
            let mut fragment: Vec<usize> = remaining
                .iter()
                .copied()
                .filter(|&i| patterns[i].subject == anchor)
                .collect();
            // Second hop: subject stars of the objects of the first hop.
            let objects: Vec<PatternTerm> = fragment
                .iter()
                .map(|&i| patterns[i].object.clone())
                .collect();
            for object in objects {
                if !object.is_variable() {
                    continue;
                }
                for &i in remaining.iter() {
                    if patterns[i].subject == object && !fragment.contains(&i) {
                        fragment.push(i);
                    }
                }
            }
            if fragment.is_empty() {
                fragment.push(seed);
            }
            for &i in &fragment {
                remaining.remove(&i);
            }
            fragment.sort_unstable();
            fragments.push(fragment);
        }
        fragments
    }

    /// Returns `true` if SHAPE-2f can answer the query without any MapReduce
    /// job (parallelizable without communication).
    pub fn is_pwoc(query: &BgpQuery) -> bool {
        Self::fragments(query).len() <= 1
    }

    /// Runs a query and reports jobs, answers and simulated time.
    pub fn run(&self, query: &BgpQuery) -> SystemRunReport {
        let graph = self.cluster.graph();
        let fragments = Self::fragments(query);
        let mut metrics = ExecutionMetrics::default();

        // Evaluate every fragment locally (RDF-3X style indexed access: the
        // dominant cost is proportional to the fragment's result size plus
        // one index lookup per pattern).
        let mut fragment_results: Vec<Relation> = Vec::with_capacity(fragments.len());
        for fragment in &fragments {
            let patterns: Vec<_> = fragment
                .iter()
                .map(|&i| query.patterns()[i].clone())
                .collect();
            let variables: Vec<Variable> = patterns
                .iter()
                .flat_map(|p| p.variables())
                .collect::<BTreeSet<_>>()
                .into_iter()
                .collect();
            let sub_query = BgpQuery::new(variables, patterns.clone());
            let result = reference_eval(graph, &sub_query);
            metrics.tuples_read += result.len() as u64 + patterns.len() as u64;
            metrics.comparisons += result.len() as u64;
            fragment_results.push(result);
        }

        // PWOC: results are concatenated locally, no job is launched.
        // Otherwise combine fragments left-deep, one MapReduce job per join,
        // preferring fragments that share variables with the accumulator.
        let mut iter = fragment_results.into_iter();
        let mut accumulated = iter.next().unwrap_or_else(|| Relation::empty(Vec::new()));
        let mut pending: Vec<Relation> = iter.collect();
        while !pending.is_empty() {
            let accumulated_vars: BTreeSet<Variable> =
                accumulated.schema().iter().cloned().collect();
            let next_index = pending
                .iter()
                .position(|relation| {
                    relation
                        .schema()
                        .iter()
                        .any(|v| accumulated_vars.contains(v))
                })
                .unwrap_or(0);
            let next = pending.remove(next_index);
            let shared: Vec<Variable> = next
                .schema()
                .iter()
                .filter(|v| accumulated_vars.contains(*v))
                .cloned()
                .collect();
            metrics.tuples_shuffled += accumulated.len() as u64 + next.len() as u64;
            let joined = Relation::join(&[&accumulated, &next], &shared);
            metrics.join_output_tuples += joined.len() as u64;
            metrics.tuples_written += joined.len() as u64;
            metrics.jobs += 1;
            metrics.map_tasks += 1;
            metrics.reduce_tasks += 1;
            accumulated = joined;
        }

        // `distinct_len` counts without cloning: projections of canonical
        // flat relations skip the sort entirely.
        let projected = if query.distinguished().is_empty() {
            accumulated
        } else {
            accumulated.project(query.distinguished())
        };
        let result_count = projected.distinct_len();
        let jobs = fragments.len().saturating_sub(1);
        SystemRunReport {
            system: "SHAPE-2f".to_string(),
            query: query.name().to_string(),
            jobs,
            job_descriptor: jobs.to_string(),
            result_count,
            simulated_seconds: metrics
                .simulated_seconds(&self.cluster.config().cost, self.cluster.nodes()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cliquesquare_engine::reference::reference_count;
    use cliquesquare_mapreduce::ClusterConfig;
    use cliquesquare_querygen::lubm_queries::{self, lubm_query};
    use cliquesquare_rdf::{LubmGenerator, LubmScale};

    fn cluster() -> Cluster {
        let graph = LubmGenerator::new(LubmScale::tiny()).generate();
        Cluster::load(graph, ClusterConfig::with_nodes(4))
    }

    #[test]
    fn paper_pwoc_queries_are_detected() {
        // The paper reports Q2, Q4, Q9 and Q10 as PWOC for SHAPE-2f.
        for name in ["Q2", "Q4", "Q9", "Q10"] {
            let q = lubm_query(name).unwrap();
            assert!(
                ShapeSystem::is_pwoc(&q),
                "{name} should be PWOC for SHAPE-2f"
            );
        }
        // ... and Q1, Q3 are not.
        for name in ["Q1", "Q3"] {
            let q = lubm_query(name).unwrap();
            assert!(
                !ShapeSystem::is_pwoc(&q),
                "{name} should not be PWOC for SHAPE-2f"
            );
        }
    }

    #[test]
    fn fragments_cover_every_pattern_exactly_once() {
        for query in lubm_queries::lubm_queries() {
            let fragments = ShapeSystem::fragments(&query);
            let mut seen = BTreeSet::new();
            for fragment in &fragments {
                for &i in fragment {
                    assert!(
                        seen.insert(i),
                        "pattern {i} of {} in two fragments",
                        query.name()
                    );
                }
            }
            assert_eq!(seen.len(), query.len());
        }
    }

    #[test]
    fn results_match_the_reference_evaluator() {
        let cluster = cluster();
        let shape = ShapeSystem::new(&cluster);
        for name in ["Q1", "Q2", "Q4", "Q7", "Q10"] {
            let q = lubm_query(name).unwrap();
            let report = shape.run(&q);
            assert_eq!(
                report.result_count,
                reference_count(cluster.graph(), &q),
                "{name} answers differ"
            );
        }
    }

    #[test]
    fn pwoc_queries_use_no_jobs_and_are_fast() {
        let cluster = cluster();
        let shape = ShapeSystem::new(&cluster);
        let pwoc = shape.run(&lubm_query("Q2").unwrap());
        assert_eq!(pwoc.jobs, 0);
        let non_pwoc = shape.run(&lubm_query("Q14").unwrap());
        assert!(non_pwoc.jobs >= 1);
        assert!(pwoc.simulated_seconds < non_pwoc.simulated_seconds);
    }
}
