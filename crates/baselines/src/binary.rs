//! Exhaustive enumeration of binary join plans (dynamic programming over
//! connected sub-queries), producing the *best binary bushy* and *best
//! binary linear* plans used as baselines in Figure 20.
//!
//! Plan quality is ranked with the classic `C_out` metric (sum of estimated
//! intermediate result cardinalities), with exact leaf cardinalities taken
//! from the loaded graph and the same independence assumption as the engine's
//! cost model for join outputs. The returned plans are ordinary
//! [`LogicalPlan`]s whose joins all have exactly two inputs, so they can be
//! translated and executed by the engine like any CliqueSquare plan.

use cliquesquare_core::{LogicalOp, LogicalPlan, OpId};
use cliquesquare_rdf::Graph;
use cliquesquare_sparql::{BgpQuery, PatternTerm, Variable};
use std::collections::{BTreeSet, HashMap};

/// A binary join tree over pattern indices.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Tree {
    Leaf(usize),
    Join(Box<Tree>, Box<Tree>),
}

/// A dynamic-programming entry for one connected sub-query.
#[derive(Debug, Clone)]
struct Entry {
    /// Sum of estimated intermediate-result cardinalities (`C_out`).
    cout: f64,
    /// Estimated cardinality of this sub-plan's result.
    cardinality: f64,
    /// Join height of this sub-plan (0 for a leaf).
    height: usize,
    tree: Tree,
}

/// Weight (in tuples) of one extra join level when ranking binary plans:
/// every additional level is another sequential MapReduce job, which the
/// Section 5.4 cost model charges on top of the per-tuple work. Without it
/// the planner would be indifferent between bushy and left-deep shapes of
/// equal `C_out`.
const LEVEL_PENALTY: f64 = 10_000.0;

impl Entry {
    fn ranking_cost(&self) -> f64 {
        self.cout + LEVEL_PENALTY * self.height as f64
    }
}

/// Enumerates binary plans for BGP queries over a given graph.
#[derive(Debug, Clone, Copy)]
pub struct BinaryPlanner<'a> {
    graph: &'a Graph,
}

impl<'a> BinaryPlanner<'a> {
    /// Creates a planner whose cardinality estimates come from `graph`.
    pub fn new(graph: &'a Graph) -> Self {
        Self { graph }
    }

    /// The cheapest binary **bushy** plan (any tree shape allowed).
    pub fn best_bushy(&self, query: &BgpQuery) -> Option<LogicalPlan> {
        self.best_plan(query, false)
    }

    /// The cheapest binary **linear** (left-deep) plan: every join's right
    /// input is a base triple pattern.
    pub fn best_linear(&self, query: &BgpQuery) -> Option<LogicalPlan> {
        self.best_plan(query, true)
    }

    /// Exact cardinality of one triple pattern in the graph.
    fn pattern_cardinality(&self, query: &BgpQuery, index: usize) -> f64 {
        let pattern = &query.patterns()[index];
        let resolve = |term: &PatternTerm| match term {
            PatternTerm::Variable(_) => Some(None),
            PatternTerm::Constant(t) => self.graph.lookup(t).map(Some),
        };
        match (
            resolve(&pattern.subject),
            resolve(&pattern.property),
            resolve(&pattern.object),
        ) {
            (Some(s), Some(p), Some(o)) => self.graph.match_pattern(s, p, o).count() as f64,
            _ => 0.0, // a constant absent from the data matches nothing
        }
    }

    fn best_plan(&self, query: &BgpQuery, linear: bool) -> Option<LogicalPlan> {
        let n = query.len();
        if n == 0 || n > 20 {
            return None;
        }
        let pattern_vars: Vec<BTreeSet<Variable>> = query
            .patterns()
            .iter()
            .map(|p| p.variables().into_iter().collect())
            .collect();

        let mut dp: HashMap<u32, Entry> = HashMap::new();
        for index in 0..n {
            dp.insert(
                1 << index,
                Entry {
                    cout: 0.0,
                    cardinality: self.pattern_cardinality(query, index),
                    height: 0,
                    tree: Tree::Leaf(index),
                },
            );
        }

        let subset_vars = |mask: u32| -> BTreeSet<Variable> {
            (0..n)
                .filter(|i| mask & (1 << i) != 0)
                .flat_map(|i| pattern_vars[i].iter().cloned())
                .collect()
        };

        let full: u32 = if n == 32 { u32::MAX } else { (1 << n) - 1 };
        for mask in 1..=full {
            if mask.count_ones() < 2 {
                continue;
            }
            let mut best: Option<Entry> = None;
            // Enumerate proper non-empty submasks as the left side.
            let mut left = (mask - 1) & mask;
            while left != 0 {
                let right = mask & !left;
                let valid_shape = !linear || right.count_ones() == 1;
                // Avoid enumerating each unordered pair twice for bushy plans
                // (left-deep plans are inherently ordered).
                let canonical = linear || left > right;
                if valid_shape && canonical {
                    if let (Some(l), Some(r)) = (dp.get(&left), dp.get(&right)) {
                        let shared: BTreeSet<Variable> = subset_vars(left)
                            .intersection(&subset_vars(right))
                            .cloned()
                            .collect();
                        if !shared.is_empty() {
                            let cardinality = join_estimate(l.cardinality, r.cardinality);
                            let candidate = Entry {
                                cout: l.cout + r.cout + cardinality,
                                cardinality,
                                height: l.height.max(r.height) + 1,
                                tree: Tree::Join(
                                    Box::new(l.tree.clone()),
                                    Box::new(r.tree.clone()),
                                ),
                            };
                            if best
                                .as_ref()
                                .is_none_or(|b| candidate.ranking_cost() < b.ranking_cost())
                            {
                                best = Some(candidate);
                            }
                        }
                    }
                }
                left = (left - 1) & mask;
            }
            if let Some(entry) = best {
                dp.insert(mask, entry);
            }
        }

        dp.get(&full)
            .map(|entry| self.tree_to_plan(query, &pattern_vars, &entry.tree))
    }

    /// Converts a binary join tree into a logical plan with a final
    /// projection on the query's distinguished variables.
    fn tree_to_plan(
        &self,
        query: &BgpQuery,
        pattern_vars: &[BTreeSet<Variable>],
        tree: &Tree,
    ) -> LogicalPlan {
        let mut ops: Vec<LogicalOp> = Vec::new();
        let root = build_ops(query, pattern_vars, tree, &mut ops);
        let variables = if query.distinguished().is_empty() {
            query.variables()
        } else {
            query.distinguished().to_vec()
        };
        ops.push(LogicalOp::Project {
            variables,
            input: root,
        });
        let root = OpId(ops.len() - 1);
        LogicalPlan::new(ops, root)
    }
}

/// Join cardinality under the independence assumption (matches the engine's
/// cost model).
fn join_estimate(left: f64, right: f64) -> f64 {
    let max = left.max(right).max(1.0);
    left * right / max
}

fn build_ops(
    query: &BgpQuery,
    pattern_vars: &[BTreeSet<Variable>],
    tree: &Tree,
    ops: &mut Vec<LogicalOp>,
) -> OpId {
    match tree {
        Tree::Leaf(index) => {
            ops.push(LogicalOp::Match {
                pattern_index: *index,
                pattern: query.patterns()[*index].clone(),
                output: pattern_vars[*index].clone(),
            });
            OpId(ops.len() - 1)
        }
        Tree::Join(left, right) => {
            let left_id = build_ops(query, pattern_vars, left, ops);
            let right_id = build_ops(query, pattern_vars, right, ops);
            let left_vars = ops[left_id.index()].output();
            let right_vars = ops[right_id.index()].output();
            let attributes: BTreeSet<Variable> =
                left_vars.intersection(&right_vars).cloned().collect();
            let output: BTreeSet<Variable> = left_vars.union(&right_vars).cloned().collect();
            ops.push(LogicalOp::Join {
                attributes,
                inputs: vec![left_id, right_id],
                output,
            });
            OpId(ops.len() - 1)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cliquesquare_engine::reference::reference_count;
    use cliquesquare_engine::Executor;
    use cliquesquare_mapreduce::{Cluster, ClusterConfig};
    use cliquesquare_rdf::{LubmGenerator, LubmScale};
    use cliquesquare_sparql::parser::parse_query;

    fn graph() -> Graph {
        LubmGenerator::new(LubmScale::tiny()).generate()
    }

    #[test]
    fn all_joins_are_binary() {
        let graph = graph();
        let planner = BinaryPlanner::new(&graph);
        let q = parse_query(
            "SELECT ?x ?z WHERE { ?x ub:advisor ?y . ?y ub:worksFor ?z . ?z ub:subOrganizationOf ?u . ?x ub:memberOf ?d }",
        )
        .unwrap();
        for plan in [
            planner.best_bushy(&q).unwrap(),
            planner.best_linear(&q).unwrap(),
        ] {
            assert_eq!(plan.join_count(), q.len() - 1);
            assert_eq!(plan.max_join_fanin(), 2);
        }
    }

    #[test]
    fn linear_plans_are_left_deep() {
        let graph = graph();
        let planner = BinaryPlanner::new(&graph);
        let q = parse_query(
            "SELECT ?a WHERE { ?a ub:p1 ?b . ?b ub:p2 ?c . ?c ub:p3 ?d . ?d ub:p4 ?e }",
        )
        .unwrap();
        let plan = planner.best_linear(&q).unwrap();
        // A left-deep plan over n patterns has height n - 1.
        assert_eq!(plan.height(), q.len() - 1);
        // Every join has at least one Match input (its right side).
        for id in plan.join_ops() {
            let inputs = plan.op(id).inputs();
            assert!(inputs.iter().any(|i| plan.op(*i).is_match()));
        }
    }

    #[test]
    fn bushy_plans_are_never_taller_than_linear_ones() {
        let graph = graph();
        let planner = BinaryPlanner::new(&graph);
        for text in [
            "SELECT ?x WHERE { ?x ub:advisor ?y . ?y ub:worksFor ?z . ?z ub:subOrganizationOf ?u . ?x ub:memberOf ?d . ?d ub:subOrganizationOf ?u }",
            "SELECT ?a WHERE { ?a ub:p1 ?b . ?b ub:p2 ?c . ?c ub:p3 ?d . ?d ub:p4 ?e . ?e ub:p5 ?f }",
        ] {
            let q = parse_query(text).unwrap();
            let bushy = planner.best_bushy(&q).unwrap();
            let linear = planner.best_linear(&q).unwrap();
            assert!(bushy.height() <= linear.height());
        }
    }

    #[test]
    fn binary_plans_compute_correct_answers() {
        let graph = graph();
        let cluster = Cluster::load(graph.clone(), ClusterConfig::with_nodes(3));
        let planner = BinaryPlanner::new(cluster.graph());
        let q = parse_query(
            "SELECT ?x ?y ?z WHERE { ?x rdf:type ub:UndergraduateStudent . ?y rdf:type ub:FullProfessor . \
             ?z rdf:type ub:Course . ?x ub:advisor ?y . ?x ub:takesCourse ?z . ?y ub:teacherOf ?z }",
        )
        .unwrap();
        let expected = reference_count(cluster.graph(), &q);
        let executor = Executor::new(&cluster);
        for plan in [
            planner.best_bushy(&q).unwrap(),
            planner.best_linear(&q).unwrap(),
        ] {
            let output = executor.execute_logical(&plan);
            assert_eq!(output.distinct_count(), expected);
        }
        assert!(expected > 0);
    }

    #[test]
    fn single_pattern_query_needs_no_join() {
        let graph = graph();
        let planner = BinaryPlanner::new(&graph);
        let q = parse_query("SELECT ?x WHERE { ?x ub:worksFor ?d }").unwrap();
        let plan = planner.best_bushy(&q).unwrap();
        assert_eq!(plan.join_count(), 0);
        assert_eq!(plan.height(), 0);
    }

    #[test]
    fn disconnected_query_has_no_binary_plan() {
        let graph = graph();
        let planner = BinaryPlanner::new(&graph);
        let q = parse_query("SELECT ?a WHERE { ?a ub:p ?b . ?x ub:q ?y }").unwrap();
        assert!(planner.best_bushy(&q).is_none());
        assert!(planner.best_linear(&q).is_none());
    }

    #[test]
    fn selective_patterns_are_joined_early_in_linear_plans() {
        let graph = graph();
        let planner = BinaryPlanner::new(&graph);
        // rdf:type GraduateStudent is far more selective than memberOf.
        let q = parse_query(
            "SELECT ?x WHERE { ?x ub:memberOf ?d . ?x rdf:type ub:GraduateStudent . ?d ub:subOrganizationOf ?u }",
        )
        .unwrap();
        let plan = planner.best_linear(&q).unwrap();
        assert_eq!(plan.join_count(), 2);
    }
}
