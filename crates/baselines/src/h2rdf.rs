//! A simulation of H2RDF+ (Papailiou et al., *H2RDF+: High-performance
//! Distributed Joins over Large-scale RDF Graphs*, IEEE BigData 2013) — the
//! second comparator system of Figure 21.
//!
//! H2RDF+ stores aggressively indexed, sorted triples in HBase and executes
//! **left-deep** sequences of joins: patterns are ordered by estimated
//! selectivity and joined one after the other, each join running as its own
//! MapReduce job (the first join can often run as a map-only merge join over
//! the sorted indexes, the later ones shuffle the accumulated intermediate
//! result). The consequence the paper highlights — and that this simulation
//! reproduces — is that a query with `n` patterns needs on the order of
//! `n − 1` sequential jobs, each paying start-up latency and re-reading the
//! previous job's output, which is what makes H2RDF+ orders of magnitude
//! slower than CSQ on non-selective queries.

use crate::report::SystemRunReport;
use cliquesquare_engine::reference::reference_eval;
use cliquesquare_engine::Relation;
use cliquesquare_mapreduce::{Cluster, ExecutionMetrics};
use cliquesquare_sparql::{BgpQuery, TriplePattern, Variable};
use std::collections::BTreeSet;

/// The H2RDF+ comparator system.
#[derive(Debug, Clone, Copy)]
pub struct H2RdfSystem<'a> {
    cluster: &'a Cluster,
}

impl<'a> H2RdfSystem<'a> {
    /// Creates an H2RDF+ instance over the given cluster.
    pub fn new(cluster: &'a Cluster) -> Self {
        Self { cluster }
    }

    /// Evaluates one triple pattern through the simulated HBase index.
    fn pattern_relation(&self, pattern: &TriplePattern) -> Relation {
        let variables: Vec<Variable> = pattern.variables();
        let query = BgpQuery::new(variables, vec![pattern.clone()]);
        reference_eval(self.cluster.graph(), &query)
    }

    /// The left-deep join order: repeatedly pick the smallest remaining
    /// pattern that stays connected to the already-joined ones.
    pub fn join_order(&self, query: &BgpQuery) -> Vec<usize> {
        let cardinalities: Vec<usize> = query
            .patterns()
            .iter()
            .map(|p| self.pattern_relation(p).len())
            .collect();
        let mut remaining: BTreeSet<usize> = (0..query.len()).collect();
        let mut bound: BTreeSet<Variable> = BTreeSet::new();
        let mut order = Vec::with_capacity(query.len());
        while !remaining.is_empty() {
            let connected: Vec<usize> = remaining
                .iter()
                .copied()
                .filter(|&i| {
                    bound.is_empty()
                        || query.patterns()[i]
                            .variables()
                            .iter()
                            .any(|v| bound.contains(v))
                })
                .collect();
            let candidates = if connected.is_empty() {
                remaining.iter().copied().collect()
            } else {
                connected
            };
            let next = candidates
                .into_iter()
                .min_by_key(|&i| cardinalities[i])
                .expect("non-empty candidates");
            remaining.remove(&next);
            bound.extend(query.patterns()[next].variables());
            order.push(next);
        }
        order
    }

    /// Runs a query and reports jobs, answers and simulated time.
    pub fn run(&self, query: &BgpQuery) -> SystemRunReport {
        let order = self.join_order(query);
        let mut metrics = ExecutionMetrics::default();
        let mut map_only_jobs = 0usize;

        let mut iterator = order.iter();
        let first = iterator.next().expect("query has at least one pattern");
        let mut accumulated = self.pattern_relation(&query.patterns()[*first]);
        metrics.tuples_read += accumulated.len() as u64;

        for (step, &index) in iterator.enumerate() {
            let next = self.pattern_relation(&query.patterns()[index]);
            metrics.tuples_read += next.len() as u64;
            let accumulated_vars: BTreeSet<Variable> =
                accumulated.schema().iter().cloned().collect();
            let shared: Vec<Variable> = next
                .schema()
                .iter()
                .filter(|v| accumulated_vars.contains(*v))
                .cloned()
                .collect();
            // The first join over two sorted base indexes runs map-only;
            // every later join shuffles the accumulated intermediate result.
            let map_only = step == 0;
            if map_only {
                map_only_jobs += 1;
            } else {
                metrics.tuples_shuffled += accumulated.len() as u64 + next.len() as u64;
                metrics.reduce_tasks += 1;
            }
            let joined = Relation::join(&[&accumulated, &next], &shared);
            metrics.join_output_tuples += joined.len() as u64;
            metrics.tuples_written += joined.len() as u64;
            metrics.jobs += 1;
            metrics.map_tasks += 1;
            accumulated = joined;
        }

        // `distinct_len` counts without cloning: projections of canonical
        // flat relations skip the sort entirely.
        let projected = if query.distinguished().is_empty() {
            accumulated
        } else {
            accumulated.project(query.distinguished())
        };
        let result_count = projected.distinct_len();
        let jobs = metrics.jobs as usize;
        let job_descriptor = if jobs == map_only_jobs && jobs <= 1 {
            "M".to_string()
        } else {
            jobs.to_string()
        };
        SystemRunReport {
            system: "H2RDF+".to_string(),
            query: query.name().to_string(),
            jobs,
            job_descriptor,
            result_count,
            simulated_seconds: metrics
                .simulated_seconds(&self.cluster.config().cost, self.cluster.nodes()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cliquesquare_engine::reference::reference_count;
    use cliquesquare_mapreduce::ClusterConfig;
    use cliquesquare_querygen::lubm_queries::lubm_query;
    use cliquesquare_rdf::{LubmGenerator, LubmScale};

    fn cluster() -> Cluster {
        let graph = LubmGenerator::new(LubmScale::tiny()).generate();
        Cluster::load(graph, ClusterConfig::with_nodes(4))
    }

    #[test]
    fn one_job_per_join() {
        let cluster = cluster();
        let system = H2RdfSystem::new(&cluster);
        for name in ["Q1", "Q4", "Q7", "Q12"] {
            let q = lubm_query(name).unwrap();
            let report = system.run(&q);
            assert_eq!(report.jobs, q.len() - 1, "{name}");
        }
    }

    #[test]
    fn join_order_stays_connected() {
        let cluster = cluster();
        let system = H2RdfSystem::new(&cluster);
        for name in ["Q7", "Q11", "Q14"] {
            let q = lubm_query(name).unwrap();
            let order = system.join_order(&q);
            assert_eq!(order.len(), q.len());
            let mut bound: BTreeSet<Variable> =
                q.patterns()[order[0]].variables().into_iter().collect();
            for &i in &order[1..] {
                let vars = q.patterns()[i].variables();
                assert!(
                    vars.iter().any(|v| bound.contains(v)),
                    "{name}: pattern {i} joined without a shared variable"
                );
                bound.extend(vars);
            }
        }
    }

    #[test]
    fn results_match_the_reference_evaluator() {
        let cluster = cluster();
        let system = H2RdfSystem::new(&cluster);
        for name in ["Q1", "Q5", "Q10", "Q13"] {
            let q = lubm_query(name).unwrap();
            let report = system.run(&q);
            assert_eq!(
                report.result_count,
                reference_count(cluster.graph(), &q),
                "{name} answers differ"
            );
        }
    }

    #[test]
    fn more_patterns_mean_more_sequential_jobs_and_time() {
        let cluster = cluster();
        let system = H2RdfSystem::new(&cluster);
        let small = system.run(&lubm_query("Q1").unwrap());
        let large = system.run(&lubm_query("Q12").unwrap());
        assert!(large.jobs > small.jobs);
        assert!(large.simulated_seconds > small.simulated_seconds);
    }
}
