//! Common report structure for comparator-system runs (Figure 21 rows).

use serde::{Deserialize, Serialize};

/// The outcome of running one query on one (simulated) system.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SystemRunReport {
    /// System name (`"CSQ"`, `"SHAPE-2f"`, `"H2RDF+"`).
    pub system: String,
    /// Query name.
    pub query: String,
    /// Number of MapReduce jobs the system needed (0 = fully local / PWOC).
    pub jobs: usize,
    /// Paper-style job descriptor (`"M"`, `"0"`, `"3"`, …).
    pub job_descriptor: String,
    /// Number of distinct answers produced.
    pub result_count: usize,
    /// Simulated response time in seconds.
    pub simulated_seconds: f64,
}

impl SystemRunReport {
    /// Pretty one-line summary.
    pub fn summary(&self) -> String {
        format!(
            "{:8} {:5} jobs={:<2} |Q|={:<8} time={:.2}s",
            self.system, self.query, self.job_descriptor, self.result_count, self.simulated_seconds
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_contains_key_fields() {
        let report = SystemRunReport {
            system: "CSQ".to_string(),
            query: "Q7".to_string(),
            jobs: 1,
            job_descriptor: "1".to_string(),
            result_count: 42,
            simulated_seconds: 12.5,
        };
        let text = report.summary();
        assert!(text.contains("CSQ"));
        assert!(text.contains("Q7"));
        assert!(text.contains("42"));
    }
}
