//! Baseline optimizers and comparator systems for the CliqueSquare
//! evaluation.
//!
//! * [`binary`] — exhaustive (dynamic-programming) enumeration of **binary**
//!   join plans: the *best binary bushy* and *best binary linear* plans of
//!   Figure 20, against which the flat n-ary CliqueSquare-MSC plans are
//!   compared.
//! * [`shape`] — a simulation of **SHAPE** with 2-hop forward semantic hash
//!   partitioning \[Lee & Liu, PVLDB 2013\]: queries covered by the 2-hop
//!   guarantee are evaluated locally (PWOC), the rest are joined fragment by
//!   fragment with one MapReduce job per binary join.
//! * [`h2rdf`] — a simulation of **H2RDF+** \[Papailiou et al., IEEE BigData
//!   2013\]: sorted HBase index scans feeding a left-deep sequence of joins,
//!   one MapReduce job per join (the first may be map-only).
//!
//! The two system simulations re-implement the *planning strategies* of the
//! original systems over our simulated cluster. This isolates exactly the
//! variable the paper studies in Figure 21 — how the plan shape and job
//! count affect response time — while keeping the data, cost parameters and
//! hardware identical across systems.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod binary;
pub mod h2rdf;
pub mod report;
pub mod shape;

pub use binary::BinaryPlanner;
pub use h2rdf::H2RdfSystem;
pub use report::SystemRunReport;
pub use shape::ShapeSystem;
