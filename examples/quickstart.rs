//! Quickstart: optimize and execute a SPARQL BGP query with CliqueSquare.
//!
//! ```bash
//! cargo run --release --example quickstart
//! ```
//!
//! The example generates a small LUBM-like dataset, loads it onto a
//! simulated 4-node cluster, optimizes a 3-pattern query with
//! CliqueSquare-MSC, shows the flat n-ary plan that was chosen, and executes
//! it, printing the MapReduce jobs and the simulated response time.

use cliquesquare_engine::csq::{Csq, CsqConfig};
use cliquesquare_mapreduce::{Cluster, ClusterConfig};
use cliquesquare_rdf::{LubmGenerator, LubmScale};
use cliquesquare_sparql::parser::parse_query;

fn main() {
    run(LubmScale::default());
}

/// Runs the whole tour at the given dataset scale (the example-smoke tests
/// call this with [`LubmScale::tiny`]).
pub fn run(scale: LubmScale) {
    // 1. Generate data and load the cluster (3 replicas: by subject,
    //    property and object, so first-level joins are co-located).
    let graph = LubmGenerator::new(scale).generate();
    println!("generated {} triples", graph.len());
    let cluster = Cluster::load(graph, ClusterConfig::with_nodes(4));

    // 2. Parse a conjunctive query: graduate students, the department they
    //    belong to, and that department's university.
    let query = parse_query(
        "SELECT ?student ?dept ?univ WHERE {
            ?student rdf:type ub:GraduateStudent .
            ?student ub:memberOf ?dept .
            ?dept ub:subOrganizationOf ?univ .
        }",
    )
    .expect("well-formed query");

    // 3. Optimize with CliqueSquare-MSC, pick the cheapest plan with the
    //    MapReduce cost model, and execute it.
    let csq = Csq::new(cluster, CsqConfig::default());
    let report = csq.run(&query);

    println!("\nchosen logical plan (height {}):", report.plan_height);
    println!("{}", report.chosen_plan.render());
    println!("MapReduce jobs ({}):", report.job_descriptor);
    println!("{}", report.execution.job_log);
    println!("answers              : {}", report.result_count);
    println!("candidate plans      : {}", report.candidate_plans);
    println!("optimization time    : {:.2} ms", report.optimization_ms);
    println!("simulated response   : {:.2} s", report.simulated_seconds);
}
