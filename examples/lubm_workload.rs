//! LUBM workload: run the paper's 14 evaluation queries (Appendix A) end to
//! end on the simulated cluster and compare CSQ with the SHAPE-2f and H2RDF+
//! baselines — a miniature of Figures 20–22.
//!
//! ```bash
//! cargo run --release --example lubm_workload
//! ```

use cliquesquare_baselines::{H2RdfSystem, ShapeSystem};
use cliquesquare_engine::csq::{Csq, CsqConfig};
use cliquesquare_mapreduce::{Cluster, ClusterConfig};
use cliquesquare_querygen::lubm_queries;
use cliquesquare_rdf::{LubmGenerator, LubmScale};
use cliquesquare_sparql::analysis;

fn main() {
    // Five universities so that the "University3" constant of Q11/Q14 exists.
    run(LubmScale::with_universities(5));
}

/// Runs the 14-query workload at the given dataset scale (the example-smoke
/// tests call this with [`LubmScale::tiny`]; constants missing at that scale
/// make the affected queries return zero answers on every system).
pub fn run(scale: LubmScale) {
    let graph = LubmGenerator::new(scale).generate();
    println!("dataset: {} triples, 7-node cluster\n", graph.len());
    let cluster = Cluster::load(graph, ClusterConfig::default());
    let csq = Csq::new(cluster.clone(), CsqConfig::default());
    let shape = ShapeSystem::new(&cluster);
    let h2rdf = H2RdfSystem::new(&cluster);

    println!(
        "{:<6} {:>4} {:>4} {:>8} | {:>5} {:>10} | {:>10} {:>10}",
        "query", "#tps", "#jv", "|Q|", "jobs", "CSQ (s)", "SHAPE (s)", "H2RDF+ (s)"
    );
    let mut totals = [0.0f64; 3];
    for query in lubm_queries::lubm_queries() {
        let stats = analysis::stats(&query);
        let report = csq.run(&query);
        let shape_report = shape.run(&query);
        let h2rdf_report = h2rdf.run(&query);
        assert_eq!(report.result_count, shape_report.result_count);
        assert_eq!(report.result_count, h2rdf_report.result_count);
        totals[0] += report.simulated_seconds;
        totals[1] += shape_report.simulated_seconds;
        totals[2] += h2rdf_report.simulated_seconds;
        println!(
            "{:<6} {:>4} {:>4} {:>8} | {:>5} {:>10.2} | {:>10.2} {:>10.2}",
            query.name(),
            stats.triple_patterns,
            stats.join_variables,
            report.result_count,
            report.job_descriptor,
            report.simulated_seconds,
            shape_report.simulated_seconds,
            h2rdf_report.simulated_seconds,
        );
    }
    println!(
        "\nwhole workload: CSQ {:.1}s, SHAPE-2f {:.1}s, H2RDF+ {:.1}s (paper: 44 min / 77 min / 23 h on LUBM10k)",
        totals[0], totals[1], totals[2]
    );
}
