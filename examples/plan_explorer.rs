//! Plan explorer: reproduces the paper's running example (Figures 1–5, 15)
//! on the 11-pattern query Q1, showing the variable graph, the MSC clique
//! decomposition, the flat logical plan, its physical translation and the
//! grouping into MapReduce jobs.
//!
//! ```bash
//! cargo run --release --example plan_explorer
//! ```

use cliquesquare_core::clique::reduce;
use cliquesquare_core::decomposition::{decompositions, DecompositionLimits};
use cliquesquare_core::{paper_examples, Optimizer, VariableGraph, Variant};
use cliquesquare_engine::jobs::schedule;
use cliquesquare_engine::translate;
use cliquesquare_rdf::{LubmGenerator, LubmScale};

fn main() {
    run(LubmScale::tiny());
}

/// Walks the paper's running example, resolving constants against a dataset
/// of the given scale (the example-smoke tests call this with
/// [`LubmScale::tiny`]).
pub fn run(scale: LubmScale) {
    let query = paper_examples::figure1_q1();
    println!("== Query Q1 (Figure 1) ==\n{query}\n");

    // The variable graph: one node per triple pattern, edges labelled by
    // shared variables.
    let graph = VariableGraph::from_query(&query);
    println!("== Variable graph G1 ==\n{graph}");
    println!(
        "join variables: {:?}\n",
        graph
            .join_variables()
            .iter()
            .map(|v| v.to_string())
            .collect::<Vec<_>>()
    );

    // One step of CliqueSquare-MSC: a minimum simple cover and its reduction
    // (Figure 5, graph G3).
    let decomposition = decompositions(&graph, Variant::Msc, &DecompositionLimits::default())
        .into_iter()
        .next()
        .expect("Q1 has a minimum-cover decomposition");
    println!("== First MSC clique decomposition ==\n{decomposition}\n");
    let reduced = reduce(&graph, &decomposition);
    println!("== Reduced variable graph (cf. Figure 5) ==\n{reduced}");

    // The full optimization: flattest MSC plan (Figure 4).
    let result = Optimizer::with_variant(Variant::Msc).optimize(&query);
    let plan = result.flattest_plans()[0].clone();
    println!(
        "== Flattest MSC logical plan (height {}, {} joins, max fan-in {}) ==\n{}",
        plan.height(),
        plan.join_count(),
        plan.max_join_fanin(),
        plan.render()
    );

    // Physical translation and job grouping (Figure 15) over a small dataset
    // so that property constants resolve through the dictionary.
    let data = LubmGenerator::new(scale).generate();
    let physical = translate(&plan, &data);
    println!("== Physical plan ==\n{}", physical.render());
    let jobs = schedule(&physical);
    println!(
        "MapReduce jobs: {} ({} map joins, {} reduce joins)",
        jobs.descriptor(),
        physical.map_join_count(),
        physical.reduce_join_count()
    );
}
