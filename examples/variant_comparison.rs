//! Variant comparison: run all eight CliqueSquare decomposition variants on
//! a small synthetic workload and print, for each, how many plans it builds,
//! how flat they are and how long optimization takes — a miniature of the
//! Section 6.2 study (Figures 16–19).
//!
//! ```bash
//! cargo run --release --example variant_comparison
//! ```

use cliquesquare_core::planspace::{evaluate_variants, paper_ho_class, HoClass};
use cliquesquare_core::{OptimizerConfig, Variant};
use cliquesquare_querygen::{SyntheticWorkload, WorkloadConfig};

fn main() {
    run();
}

/// Runs the variant study; purely synthetic, so no dataset scale is needed.
pub fn run() {
    let workload = SyntheticWorkload::generate(WorkloadConfig {
        queries_per_shape: 8,
        min_patterns: 2,
        max_patterns: 7,
        seed: 99,
    });
    println!(
        "workload: {} synthetic queries (chain / star / thin / dense)\n",
        workload.len()
    );

    let config = OptimizerConfig::recommended().with_max_plans(20_000);
    let report = evaluate_variants(&workload, &Variant::ALL, config);

    println!(
        "{:<6} {:>12} {:>12} {:>12} {:>12} {:>9}  paper class",
        "option", "avg plans", "optimality", "uniqueness", "time (ms)", "failures"
    );
    for row in &report.rows {
        let class = match paper_ho_class(row.variant) {
            HoClass::Complete => "HO-complete",
            HoClass::Partial => "HO-partial",
            HoClass::Lossy => "HO-lossy",
        };
        println!(
            "{:<6} {:>12.1} {:>11.1}% {:>11.1}% {:>12.3} {:>9}  {}",
            row.variant.name(),
            row.avg_plans,
            row.avg_optimality_ratio * 100.0,
            row.avg_uniqueness_ratio * 100.0,
            row.avg_time_ms,
            row.failed_queries,
            class
        );
    }
    println!(
        "\nAs in the paper: MXC+/XC+ fail on some queries, SC/XC enumerate huge plan spaces, \
         and MSC offers the best trade-off (only height-optimal plans here, in well under a second)."
    );
}
