//! Bulk-loading a cluster with the parallel load pipeline.
//!
//! ```bash
//! cargo run --release --example bulk_load
//! ```
//!
//! The example generates a LUBM-like dataset through the parallel bulk
//! loader (sharded dictionary encoding + parallel index and partition
//! builds), verifies the result is bit-identical to the sequential ingest
//! path, prints the per-stage timing report, and runs a query on the loaded
//! cluster. It then round-trips the dataset through N-Triples text —
//! including escaped literals — and loads that too.

use cliquesquare_engine::csq::{Csq, CsqConfig};
use cliquesquare_mapreduce::load::{BulkLoader, LoadOptions};
use cliquesquare_mapreduce::{Cluster, ClusterConfig, Runtime};
use cliquesquare_rdf::{ntriples, LubmGenerator, LubmScale, Term};
use cliquesquare_sparql::parser::parse_query;

fn main() {
    run(LubmScale::default());
}

/// Runs the whole tour at the given dataset scale (the example-smoke tests
/// call this with [`LubmScale::tiny`]).
pub fn run(scale: LubmScale) {
    // 1. Bulk-load the LUBM dataset: universities generate in parallel,
    //    chunks encode against per-thread shard dictionaries, the merge
    //    assigns final ids in first-occurrence order, and the indexes and
    //    the replicated partitions build as task waves.
    let loader = BulkLoader::new(Runtime::with_threads(4));
    let options = LoadOptions::with_nodes(4);
    let output = loader.load_lubm(scale, &options);
    let report = output.report;
    println!(
        "bulk-loaded {} triples ({} distinct terms) on {} threads in {:.2} ms \
         ({:.0} triples/s)",
        report.triples,
        report.distinct_terms,
        report.threads,
        report.total_seconds() * 1e3,
        report.triples_per_second()
    );
    println!(
        "  stages: input {:.2} ms, encode {:.2} ms, merge {:.2} ms, \
         index {:.2} ms, partition {:.2} ms",
        report.input_seconds * 1e3,
        report.encode_seconds * 1e3,
        report.merge_seconds * 1e3,
        report.index_seconds * 1e3,
        report.partition_seconds * 1e3
    );

    // 2. The determinism contract: the parallel load equals the sequential
    //    path bit for bit (same ids, same indexes, same partition files).
    let sequential = LubmGenerator::new(scale).generate();
    assert_eq!(output.graph, sequential);
    println!("  bit-identical to the sequential ingest path ✓");

    // 3. Round-trip through N-Triples text, with a literal that needs
    //    escaping, and bulk-load the text form too.
    let mut graph_with_spikes = sequential.clone();
    graph_with_spikes.insert_terms(
        Term::iri("http://example.org/report"),
        Term::iri("http://example.org/title"),
        Term::literal("A \"quoted\"\ntwo-line title"),
    );
    let text = ntriples::serialize(&graph_with_spikes);
    let reloaded = loader
        .load_ntriples(&text, &options)
        .expect("serialized dataset parses");
    assert_eq!(reloaded.graph, graph_with_spikes);
    println!(
        "  N-Triples round-trip of {} bytes preserved all {} triples ✓",
        text.len(),
        reloaded.graph.len()
    );

    // 4. Query the bulk-loaded cluster.
    let cluster = Cluster::load(output.graph, ClusterConfig::with_nodes(4));
    let csq = Csq::new(cluster, CsqConfig::default());
    let query = parse_query(
        "SELECT ?student ?dept WHERE {
            ?student rdf:type ub:GraduateStudent .
            ?student ub:memberOf ?dept .
        }",
    )
    .expect("well-formed query");
    let result = csq.run(&query);
    println!(
        "query on the loaded cluster: {} answers in {} job(s)",
        result.result_count, result.job_descriptor
    );
    assert!(result.result_count > 0);
}
